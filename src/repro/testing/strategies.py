"""Hypothesis strategies shared by the test suite and the schedule fuzzer.

These generators were originally private copies inside individual test
modules (``test_properties``, ``test_fastpath_differential``,
``test_batch_differential``); they live here so the property tests, the
cross-engine differential tests, and :mod:`repro.search`'s fuzz tests all
draw from one vocabulary:

* :func:`random_port_graph` — seeded connected port graphs across the
  library's generator families and port numberings;
* :data:`step_strategy` / :data:`script_strategy` / :func:`scripts` —
  scripted robot programs exercising every scheduler cold path (moves,
  stays, sleeps, wake-on-meet, whiteboard cards, termination);
* :func:`scripted_factory` — compile a drawn script into a robot factory;
* :func:`placements` — start nodes for ``k`` robots on a given graph;
* :data:`fault_plan_strategy` — crash/delay tables in the
  :class:`repro.ext.faults.FaultPlan` dict form;
* :func:`activation_strategy` — ``(name, options)`` pairs covering every
  registered activation model with valid option values.

Hypothesis is a ``dev``-extra dependency: this module is imported by tests
and fuzz tooling, never by the production packages.
"""

from __future__ import annotations

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - dev extra always present in CI
    raise ImportError(
        "repro.testing.strategies needs hypothesis — install the 'dev' extra"
    ) from exc

from repro.graphs import generators as gg
from repro.sim.actions import Action

__all__ = [
    "random_port_graph",
    "step_strategy",
    "script_strategy",
    "scripts",
    "scripted_factory",
    "placements",
    "fault_plan_strategy",
    "activation_strategy",
]


# ---------------------------------------------------------------------------
# Graphs
# ---------------------------------------------------------------------------
@st.composite
def random_port_graph(draw, min_n=4, max_n=12):
    """A random connected port graph: seeded family + random numbering."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**16))
    numbering = draw(st.sampled_from(["canonical", "random", "reversed", "rotated"]))
    family = draw(st.sampled_from(["ring", "path", "erdos_renyi", "random_tree", "star"]))
    if family == "ring":
        return gg.ring(max(n, 3), numbering=numbering, seed=seed)
    if family == "path":
        return gg.path(n, numbering=numbering, seed=seed)
    if family == "random_tree":
        return gg.random_tree(n, seed=seed, numbering=numbering)
    if family == "star":
        return gg.star(n, numbering=numbering, seed=seed)
    return gg.erdos_renyi(n, seed=seed, numbering=numbering)


# ---------------------------------------------------------------------------
# Scripted robots (the differential suite's activation vocabulary)
# ---------------------------------------------------------------------------
#: One scripted robot step.  Ports/wake delays are drawn wide and reduced
#: modulo the local degree / rebased on the observed round at execution
#: time, so every draw is valid on every graph.
step_strategy = st.one_of(
    st.tuples(st.just("move"), st.integers(0, 7)),
    st.tuples(st.just("stay")),
    st.tuples(st.just("sleep"), st.integers(0, 9)),
    st.tuples(st.just("sleep_meet"), st.integers(0, 9)),
    st.tuples(st.just("card"), st.integers(0, 3)),
)


def scripts(min_size: int = 1, max_size: int = 10):
    """A strategy for one robot script of ``min_size..max_size`` steps."""
    return st.lists(step_strategy, min_size=min_size, max_size=max_size)


#: The historical default script shape (up to 10 steps).
script_strategy = scripts()


def scripted_factory(script):
    """Compile a drawn script into a robot factory (terminates at the end)."""

    def factory(ctx):
        def program():
            obs = yield
            for step in script:
                kind = step[0]
                if kind == "move":
                    obs = yield Action.move(step[1] % obs.degree)
                elif kind == "stay":
                    obs = yield Action.stay()
                elif kind == "sleep":
                    obs = yield Action.sleep(obs.round + 1 + step[1])
                elif kind == "sleep_meet":
                    obs = yield Action.sleep(obs.round + 1 + step[1], wake_on_meet=True)
                elif kind == "card":
                    obs = yield Action.stay(card={"v": step[1]})
            yield Action.terminate()

        return program()

    return factory


# ---------------------------------------------------------------------------
# Placements
# ---------------------------------------------------------------------------
def placements(graph, k: int):
    """Start nodes for ``k`` robots on ``graph`` (co-location allowed)."""
    return st.lists(st.integers(0, graph.n - 1), min_size=k, max_size=k)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
#: Crash/delay tables in :meth:`repro.ext.faults.FaultPlan.from_dict` form.
#: Indices are drawn wide; callers clamp to their fleet size (``i < k``).
fault_plan_strategy = st.builds(
    lambda crash, delay: {"crash": crash, "delay": delay},
    st.dictionaries(st.integers(0, 3), st.integers(0, 12), max_size=3),
    st.dictionaries(st.integers(0, 3), st.integers(0, 8), max_size=3),
)


# ---------------------------------------------------------------------------
# Activation models
# ---------------------------------------------------------------------------
def activation_strategy():
    """``(name, options)`` pairs valid for :func:`repro.sim.activation.
    build_activation`, covering every registered model."""
    return st.one_of(
        st.tuples(st.just("sync"), st.just({})),
        st.tuples(
            st.just("round-robin"),
            st.fixed_dictionaries({"groups": st.integers(1, 4)}),
        ),
        st.tuples(
            st.just("adversarial"),
            st.fixed_dictionaries({"budget": st.integers(0, 3)}),
        ),
        st.tuples(
            st.just("random"),
            st.fixed_dictionaries(
                {
                    "seed": st.integers(0, 2**16),
                    "rate": st.sampled_from([0.25, 0.5, 0.75]),
                }
            ),
        ),
        st.tuples(
            st.just("biased"),
            st.fixed_dictionaries(
                {
                    "seed": st.integers(0, 2**16),
                    "budget": st.integers(1, 2),
                    "bias": st.sampled_from([2.0, 4.0, 8.0]),
                }
            ),
        ),
    )
