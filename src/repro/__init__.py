"""repro — Fast Deterministic Gathering with Detection on Arbitrary Graphs.

A faithful, self-contained reproduction of Molla, Mondal & Moses Jr.,
*"Fast Deterministic Gathering with Detection on Arbitrary Graphs: The Power
of Many Robots"* (IPDPS 2023, arXiv:2305.01753): the synchronous
Face-to-Face mobile-robot model, the ``Faster-Gathering`` algorithm and all
of its substrates (anonymous port-labeled graphs, a round-level simulator,
universal exploration sequences, token-based map construction), the
baselines it is compared against, and a benchmark harness regenerating
every theorem-level result.

Quickstart::

    from repro import World, RobotSpec, faster_gathering_program, generators

    g = generators.ring(12)
    robots = [RobotSpec(label=5 * i + 3, start=2 * i, factory=faster_gathering_program())
              for i in range(7)]
    result = World(g, robots).run()
    assert result.gathered and result.detected
    print(result.rounds, "rounds")

See docs/ALGORITHMS.md for the paper-to-code map (algorithms, bounds, and
where each theorem is exercised) and docs/PERF.md for the measured
performance record and the benchmark workflow; docs/ENGINES.md documents
the simulation-backend registry behind ``World.run(engine=...)``.
"""

from repro.graphs import PortGraph, Edge, generators
from repro.sim import (
    World,
    RunResult,
    RobotSpec,
    RobotContext,
    Action,
    Observation,
    TraceRecorder,
    Engine,
    EngineCapabilities,
    UnsupportedFeature,
    get_engine,
    list_engines,
)
from repro.core import bounds
from repro.core.uxs_gathering import uxs_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.hop_meeting import hop_meeting_program
from repro.core.faster_gathering import faster_gathering_program
from repro.uxs import practical_plan, exhaustive_plan, UxsPlan

__version__ = "1.0.0"

__all__ = [
    "PortGraph",
    "Edge",
    "generators",
    "World",
    "RunResult",
    "RobotSpec",
    "RobotContext",
    "Action",
    "Observation",
    "TraceRecorder",
    "Engine",
    "EngineCapabilities",
    "UnsupportedFeature",
    "get_engine",
    "list_engines",
    "bounds",
    "uxs_gathering_program",
    "undispersed_gathering_program",
    "hop_meeting_program",
    "faster_gathering_program",
    "practical_plan",
    "exhaustive_plan",
    "UxsPlan",
    "__version__",
]
