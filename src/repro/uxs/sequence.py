"""UXS plans and walk semantics.

The walk rule is the standard one for exploration sequences: a robot that
entered its current node through port ``e`` (``e = 0`` before the first
move) and reads symbol ``σ`` leaves through port ``(e + σ) mod δ``.  The
same rule is implemented twice — once here for simulator-side verification
walks, and once inside robot programs (which can only observe degree and
entry port); tests cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.graphs.port_graph import PortGraph

__all__ = ["UxsPlan", "exploration_walk", "next_port"]


def next_port(entry_port: int, symbol: int, degree: int) -> int:
    """The exploration-sequence step rule."""
    if degree <= 0:
        raise ValueError("degree must be positive")
    return (entry_port + symbol) % degree


@dataclass(frozen=True)
class UxsPlan:
    """A concrete exploration sequence for a given ``n``.

    Attributes
    ----------
    n:
        The node budget the plan was built for.
    offsets:
        The symbols ``σ_0 .. σ_{T-1}``.  ``T = len(offsets)`` is the
        exploration-phase length every robot uses.
    provenance:
        How the plan was produced (``"practical"``, ``"exhaustive"``, or
        ``"fixed"``), recorded into experiment reports.
    """

    n: int
    offsets: Tuple[int, ...]
    provenance: str = "fixed"

    @property
    def T(self) -> int:
        return len(self.offsets)

    def __len__(self) -> int:
        return len(self.offsets)


def exploration_walk(
    graph: PortGraph, offsets: Sequence[int], start: int, entry_port: int = 0
) -> List[int]:
    """Simulator-side execution of an exploration sequence.

    Returns the node sequence (length ``len(offsets) + 1``, starting with
    ``start``).  Used by the verifier and by tests that cross-check robot
    behaviour.
    """
    v = start
    e = entry_port
    out = [v]
    traverse = graph.traverse
    degree = graph.degree
    for sym in offsets:
        p = (e + sym) % degree(v)
        v, e = traverse(v, p)
        out.append(v)
    return out
