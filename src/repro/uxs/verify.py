"""Coverage verification for exploration sequences.

``covers`` / ``cover_step`` check a single (graph, start); the
``*_all_starts`` variants quantify over start nodes, which is what
universality requires (a waiting robot can be anywhere).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graphs.port_graph import PortGraph

__all__ = [
    "UxsCertificationError",
    "cover_step",
    "covers",
    "covers_all_starts",
    "max_cover_step_all_starts",
]


class UxsCertificationError(RuntimeError):
    """An exploration sequence failed certification for a graph.

    Raised by the harness when an experiment graph is not covered by the
    plan certified for its ``n``; the remedy is raising the certification
    safety factor (see :func:`repro.uxs.generators.practical_plan`), never
    silently shortening the schedule.
    """


def cover_step(
    graph: PortGraph, offsets: Sequence[int], start: int, entry_port: int = 0
) -> Optional[int]:
    """The 1-based step index at which the walk has visited every node.

    Returns ``None`` if the sequence ends before full coverage.  Walks
    incrementally and stops as soon as coverage is achieved, so certifying
    an easy graph against a long sequence is cheap.
    """
    n = graph.n
    seen = bytearray(n)
    seen[start] = 1
    remaining = n - 1
    if remaining == 0:
        return 0
    v = start
    e = entry_port
    traverse = graph.traverse
    degree = graph.degree
    for t, sym in enumerate(offsets, start=1):
        p = (e + sym) % degree(v)
        v, e = traverse(v, p)
        if not seen[v]:
            seen[v] = 1
            remaining -= 1
            if remaining == 0:
                return t
    return None


def covers(graph: PortGraph, offsets: Sequence[int], start: int) -> bool:
    return cover_step(graph, offsets, start) is not None


def covers_all_starts(graph: PortGraph, offsets: Sequence[int]) -> bool:
    return all(covers(graph, offsets, s) for s in graph.nodes())


def max_cover_step_all_starts(
    graph: PortGraph, offsets: Sequence[int]
) -> Optional[int]:
    """Worst cover step over all starts, or ``None`` if any start fails."""
    worst = 0
    for s in graph.nodes():
        step = cover_step(graph, offsets, s)
        if step is None:
            return None
        worst = max(worst, step)
    return worst
