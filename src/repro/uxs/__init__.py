"""Universal exploration sequences (UXS).

An *exploration sequence* is a sequence of offsets ``σ_0, σ_1, ...``
interpreted by a walking robot as: having entered the current node through
port ``e`` (``e = 0`` at the start), leave through port ``(e + σ_t) mod δ``
where ``δ`` is the node's degree.  A sequence is *universal* for ``n`` if
this walk visits every node of every connected graph with at most ``n``
nodes, from every start.

The paper invokes the Reingold/Ta-Shma–Zwick construction with length
``T = Õ(n^5)``.  That construction is famously impractical (see DESIGN.md,
substitution S1), so this package provides:

* :func:`~repro.uxs.generators.practical_plan` — a deterministic
  pseudorandom sequence derived from ``n`` alone, certified by walking it
  over a deterministic battery of graphs (including the lollipop cover-time
  worst case) from every start node, with a doubling search for the
  required length.  Everything is a pure function of ``n``: all robots
  compute the identical plan, which is the only property the algorithms
  rely on.
* :func:`~repro.uxs.generators.exhaustive_plan` — a provably universal
  sequence for tiny ``n`` found by searching against *all* connected
  port-labeled graphs on at most ``n`` nodes.
* :mod:`~repro.uxs.verify` — coverage checking utilities used by both and
  by the experiment harness (which re-verifies the plan on each experiment
  graph and refuses to report results for an uncovered instance).
"""

from repro.uxs.sequence import UxsPlan, exploration_walk
from repro.uxs.generators import practical_plan, exhaustive_plan, splitmix_offsets
from repro.uxs.verify import covers, cover_step, covers_all_starts, UxsCertificationError

__all__ = [
    "UxsPlan",
    "exploration_walk",
    "practical_plan",
    "exhaustive_plan",
    "splitmix_offsets",
    "covers",
    "cover_step",
    "covers_all_starts",
    "UxsCertificationError",
]
