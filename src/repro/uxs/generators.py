"""Constructing exploration sequences.

Two constructions, per DESIGN.md substitution S1:

* :func:`practical_plan` — the workhorse.  Symbols come from a splitmix64
  stream seeded *only by n*, so every robot derives the identical sequence
  from its model-granted knowledge.  The length is found by doubling until
  the sequence covers a deterministic certification battery (rings, paths,
  complete graphs, lollipops, trees, random regular/ER samples — including
  the classic cover-time worst cases) from **every** start node, then
  trimmed to the worst observed cover step times a safety factor.
* :func:`exhaustive_plan` — provable universality for tiny ``n`` by
  searching against *all* connected port-labeled graphs on at most ``n``
  nodes.  Exists to demonstrate the genuine article and to sanity-check the
  practical construction's semantics; ``n <= 4`` only.

Both return :class:`~repro.uxs.sequence.UxsPlan`; results are memoised (the
certification walk is pure).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Tuple

from repro.graphs import generators as gg
from repro.graphs.enumeration import all_port_graphs
from repro.graphs.port_graph import PortGraph
from repro.uxs.sequence import UxsPlan
from repro.uxs.verify import (
    UxsCertificationError,
    covers_all_starts,
    max_cover_step_all_starts,
)

__all__ = ["splitmix_offsets", "certification_battery", "practical_plan", "exhaustive_plan"]

#: Hard cap on the doubling search: comfortably beyond the random-walk
#: cover-time regime (Θ(n^3) on the lollipop) for the sizes this repo runs.
_LENGTH_CAP_FACTOR = 512


def _splitmix64(state: int) -> Tuple[int, int]:
    state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    z = z ^ (z >> 31)
    return state, z


def splitmix_offsets(n: int, length: int, stream: int = 0) -> Tuple[int, ...]:
    """``length`` deterministic symbols in ``[0, n)`` derived from ``n`` only.

    ``stream`` selects an alternative sequence for the same ``n`` (used by
    certification escalation); all robots must agree on it, so the library
    pins ``stream = 0`` everywhere outside tests.
    """
    out: List[int] = []
    state = (0xA076_1D64_78BD_642F ^ (n * 0x9E37_79B9)) ^ (stream * 0xC2B2_AE35)
    for _ in range(length):
        state, z = _splitmix64(state)
        out.append(z % max(n, 2))
    return tuple(out)


def certification_battery(n: int) -> List[PortGraph]:
    """The deterministic graph battery a practical plan must cover.

    A pure function of ``n``: includes the cover-time worst cases (lollipop,
    barbell, path), the high-symmetry cases (ring, complete, hypercube-ish
    torus when available), trees, and seeded random samples — each under
    both canonical and seeded-random port numbering.
    """
    graphs: List[PortGraph] = []

    def add(g: PortGraph) -> None:
        graphs.append(g)

    if n == 1:
        return [PortGraph(1, [])]
    if n == 2:
        return [gg.path(2)]

    for numbering in ("canonical", "random"):
        add(gg.ring(n, numbering=numbering, seed=n))
        add(gg.path(n, numbering=numbering, seed=n))
        add(gg.complete(n, numbering=numbering, seed=n))
        add(gg.binary_tree(n, numbering=numbering, seed=n))
        if n >= 4:
            add(gg.lollipop(n, numbering=numbering, seed=n))
        if n >= 6:
            add(gg.barbell(n, numbering=numbering, seed=n))
        add(gg.random_tree(n, seed=n + 1, numbering=numbering))
        add(gg.erdos_renyi(n, seed=n + 2, numbering=numbering))
        add(gg.erdos_renyi(n, seed=n + 3, numbering=numbering))
        if n >= 4 and (n * 3) % 2 == 0:
            add(gg.random_regular(n, 3, seed=n + 4, numbering=numbering))
    return graphs


@lru_cache(maxsize=None)
def practical_plan(n: int, safety: int = 2, stream: int = 0) -> UxsPlan:
    """The certified practical exploration sequence for ``n``.

    Doubling search starting at ``8·n^2·ceil(log2 n)``; once the battery is
    covered from all starts, the sequence is trimmed to ``safety`` times the
    worst observed cover step (never below the worst step itself).  The
    result is memoised; everything is a pure function of ``(n, safety,
    stream)``.

    Raises
    ------
    UxsCertificationError
        If no length up to the cap covers the battery (never observed for
        in-repo sizes; the escape hatch is a different ``stream``).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        return UxsPlan(1, (), provenance="practical")

    battery = certification_battery(n)
    log2n = max(1, math.ceil(math.log2(n)))
    length = 8 * n * n * log2n
    cap = _LENGTH_CAP_FACTOR * n * n * n * log2n
    while length <= cap:
        offsets = splitmix_offsets(n, length, stream=stream)
        worst = 0
        ok = True
        for g in battery:
            step = max_cover_step_all_starts(g, offsets)
            if step is None:
                ok = False
                break
            worst = max(worst, step)
        if ok:
            t = min(length, max(worst * safety, worst))
            return UxsPlan(n, offsets[:t], provenance="practical")
        length *= 2
    raise UxsCertificationError(
        f"no splitmix sequence of length <= {cap} covered the battery for n={n}; "
        f"try a different stream"
    )


@lru_cache(maxsize=None)
def exhaustive_plan(n: int, step: int = 64) -> UxsPlan:
    """A provably universal sequence for all graphs with at most ``n`` nodes.

    Grows a splitmix sequence in ``step`` increments until it covers every
    connected port-labeled graph on ``2..n`` nodes from every start node.
    Exponential in ``n`` by nature; guarded to ``n <= 4``.
    """
    if not (1 <= n <= 4):
        raise ValueError("exhaustive_plan is only tractable for n <= 4")
    if n == 1:
        return UxsPlan(1, (), provenance="exhaustive")

    # Enumerate once; re-verify incrementally longer prefixes.
    universe: List[PortGraph] = []
    for size in range(2, n + 1):
        universe.extend(all_port_graphs(size))

    length = step
    while True:
        offsets = splitmix_offsets(n, length, stream=7)
        if all(covers_all_starts(g, offsets) for g in universe):
            # trim to the worst cover step for a tight certificate
            worst = 0
            for g in universe:
                s = max_cover_step_all_starts(g, offsets)
                assert s is not None
                worst = max(worst, s)
            return UxsPlan(n, offsets[:worst], provenance="exhaustive")
        length += step
        if length > 1_000_000:  # pragma: no cover - safety valve
            raise UxsCertificationError(f"exhaustive search for n={n} ran away")
