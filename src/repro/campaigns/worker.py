"""The campaign worker: a pull-based, crash-safe work-stealing loop.

One worker process runs :func:`run_worker` against a manifest and a shared
cache directory.  N workers — any mix of processes and hosts pointed at
the same directory — consume one grid cooperatively with **no coordinator
process**: each worker scans the cell list in its own (owner-seeded)
order, skips cells whose keys already resolve in the cache, claims a
pending cell's lease, executes it, writes the result through, and
releases.  The cache write is the only commit point; everything else can
die at any instruction:

* killed **before the claim** — nothing happened;
* killed **holding the lease, before the write** — the lease goes stale
  and is reclaimed after the timeout; the cell re-executes (its spec is
  deterministic, so the eventual record is bit-identical);
* killed **mid-write** — the atomic tmp-then-rename discipline means the
  entry either exists completely or not at all; the dropping is swept by
  startup hygiene;
* killed **after the write, before the release** — the cell is done (the
  cache key resolves); the orphaned lease is swept on the next startup.

Because completion is derived from cache-key existence, *resume is the
same code path as run*: launch workers again and they execute exactly the
missing cells.  A fully completed campaign "resumes" with zero executions
and 100% cache hits.

The execution itself goes through :meth:`repro.runtime.executor.Executor.
iter_run` — the pull loop asks the claim generator for the next spec only
when it is ready to run one, so a worker holds at most one lease at a
time and claims are made just-in-time.

Chaos hooks (:mod:`repro.testing.chaos`) are threaded through the three
kill-relevant points (``claimed`` / ``pre_write`` / ``post_write``) and
the claim path; with no ``REPRO_CHAOS`` in the environment they cost one
``None`` check each.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro.campaigns.leases import DEFAULT_LEASE_TIMEOUT, LeaseManager
from repro.campaigns.manifest import (
    CampaignManifest,
    CampaignStatus,
    campaign_status,
    load_manifest,
    save_manifest,
)
from repro.runtime.api import ExecutionStats
from repro.runtime.cache import ResultCache
from repro.runtime.executor import Executor, SerialExecutor
from repro.runtime.spec import RunOutcome, RunSpec
from repro.testing.chaos import ChaosMonkey, chaos_from_env

__all__ = [
    "run_worker",
    "run_campaign",
    "resume_campaign",
    "status_of",
    "DEFAULT_IDLE_TIMEOUT",
]

#: How long a worker keeps backing off against cells leased to *other*
#: workers before giving up and returning (the campaign is then finished
#: by whoever holds those leases, or by a resume after they go stale).
DEFAULT_IDLE_TIMEOUT = 300.0

#: ``progress(outcome, done_cells, total_cells)`` — fires per executed cell.
ProgressCallback = Callable[[RunOutcome, int, int], None]


def run_worker(
    manifest: CampaignManifest,
    cache: ResultCache,
    executor: Optional[Executor] = None,
    engine: Optional[str] = None,
    owner: Optional[str] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    chaos: Optional[ChaosMonkey] = None,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[ExecutionStats] = None,
) -> ExecutionStats:
    """Consume one campaign until it is complete (or only others' work
    remains); returns this worker's accounting.

    The returned stats follow :func:`repro.runtime.execute` semantics:
    ``total`` is the whole grid, ``cache_hits`` counts cells this worker
    found already done (no matter who did them), ``executed``/``failures``
    count this worker's own runs, and the robustness counters surface
    contention, reclaimed leases, corrupt entries, idle retries, and swept
    tmp droppings.
    """
    t0 = time.perf_counter()
    executor = executor if executor is not None else SerialExecutor()
    if chaos is None:
        chaos = chaos_from_env(cache.root)
    leases = LeaseManager(cache.root, manifest.campaign_id, owner=owner, timeout=lease_timeout)
    local = ExecutionStats(total=len(manifest.cells))
    corrupt_before = cache.corrupt

    # Startup hygiene: drop killed writers' tmp files, resync the chunk
    # index, and clear orphaned leases over already-done cells.
    local.tmp_swept += cache.sweep_stale_tmp()
    cache.refresh()
    leases.sweep_orphans(
        cell.key for cell in manifest.cells if cache.contains_key(cell.key)
    )

    # Per-worker scan order: deterministic in the owner id, different
    # across workers, so N workers starting together fan out over the grid
    # instead of stampeding the same first cell.
    order = list(manifest.cells)
    random.Random(leases.owner).shuffle(order)

    pending = {cell.key: cell for cell in order}
    failed: set = set()
    held: list = []  # (cell, lease) in pull order — at most one deep

    def todo() -> int:
        return len(pending) - len(failed)

    def pull() -> Iterator[RunSpec]:
        """Claim cells just-in-time and hand their specs to the executor.

        Yields only specs whose lease this worker holds; the consumer
        below writes/releases before the next pull, so a killed worker
        leaves at most one claimed cell behind.
        """
        rng = random.Random(f"{leases.owner}:backoff")
        idle = 0.0
        attempt = 0
        while todo():
            progressed = False
            for cell in [pending[k] for k in list(pending) if k not in failed]:
                if cell.key not in pending:
                    continue
                if cache.get(cell.spec) is not None:
                    pending.pop(cell.key, None)
                    local.cache_hits += 1
                    progressed = True
                    continue
                if chaos is not None:
                    chaos.delay_claim(cell.key)
                lease = leases.try_claim(cell.key)
                if lease is None:
                    continue
                if chaos is not None:
                    chaos.trip("claimed", cell.key)
                held.append((cell, lease))
                yield cell.spec
                progressed = True
            if not todo():
                return
            if progressed:
                attempt = 0
                continue
            # Everything left is leased to someone else: bounded, jittered
            # exponential backoff, then rescan (their results land in the
            # cache; their deaths make their leases reclaimable).
            attempt += 1
            local.retries += 1
            if idle >= idle_timeout:
                return
            pause = min(backoff_cap, backoff_base * (2 ** min(attempt, 10)))
            pause *= 0.5 + rng.random()
            time.sleep(pause)
            idle += pause
            cache.refresh()

    for outcome in executor.iter_run(pull(), engine=engine):
        cell, lease = held.pop(0)
        lease.heartbeat()
        if chaos is not None:
            chaos.trip("pre_write", cell.key)
        if outcome.ok:
            cache.put(outcome.spec, outcome.run)
        else:
            local.failures += 1
            failed.add(cell.key)
        if chaos is not None:
            chaos.trip("post_write", cell.key)
        leases.release(lease)
        local.executed += 1
        pending.pop(cell.key, None)
        if progress is not None:
            done = len(manifest.cells) - todo()
            progress(outcome, done, len(manifest.cells))

    local.contended = leases.contended
    local.reclaimed = leases.reclaimed
    local.corrupt += cache.corrupt - corrupt_before
    local.elapsed = time.perf_counter() - t0
    if stats is not None:
        stats.merge(local)
    return local


# ---------------------------------------------------------------------------
# Multi-process launch (one host; cross-host attach = run this on each host)
# ---------------------------------------------------------------------------


def _worker_main(
    cache_root: str,
    campaign_id: str,
    engine: Optional[str],
    lease_timeout: float,
    idle_timeout: float,
    queue,
) -> None:
    """Entry point for spawned worker processes (module-level: picklable).

    Coordination stays filesystem-only — the queue carries nothing but the
    final stats back to the launching CLI for a nicer summary, and a
    worker that dies simply reports nothing.
    """
    manifest = load_manifest(cache_root, campaign_id)
    cache = ResultCache(cache_root)
    stats = run_worker(
        manifest,
        cache,
        engine=engine,
        lease_timeout=lease_timeout,
        idle_timeout=idle_timeout,
    )
    queue.put(stats)


def run_campaign(
    manifest: CampaignManifest,
    cache_root: Union[str, Path],
    workers: int = 1,
    engine: Optional[str] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    chaos: Optional[ChaosMonkey] = None,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[ExecutionStats] = None,
    mp_context: Optional[str] = None,
) -> ExecutionStats:
    """Persist the manifest and drive it to completion with N workers.

    ``workers=1`` runs the loop in-process (chaos hooks and custom
    executors usable); ``workers>1`` launches OS processes that each run
    :func:`run_worker` and coordinate purely through the cache directory —
    the same thing ``python -m repro campaign workers`` does on another
    host.  Worker deaths (including SIGKILL) are tolerated: survivors or a
    later resume finish the grid.
    """
    save_manifest(manifest, cache_root)
    if workers <= 1:
        return run_worker(
            manifest,
            ResultCache(cache_root),
            engine=engine,
            lease_timeout=lease_timeout,
            idle_timeout=idle_timeout,
            chaos=chaos,
            progress=progress,
            stats=stats,
        )

    import multiprocessing

    ctx = multiprocessing.get_context(mp_context) if mp_context else multiprocessing
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(
                str(cache_root),
                manifest.campaign_id,
                engine,
                lease_timeout,
                idle_timeout,
                queue,
            ),
        )
        for _ in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    merged = ExecutionStats()
    reported = 0
    while not queue.empty():
        merged.merge(queue.get())
        reported += 1
    # Campaign-level accounting, derived from disk like everything else:
    # summing per-worker hit counts would count each done cell once per
    # scanning worker, so hits are recomputed as done-minus-executed.
    cache = ResultCache(cache_root)
    status = campaign_status(manifest, cache)
    merged.total = len(manifest.cells)
    merged.cache_hits = max(0, status.done - (merged.executed - merged.failures))
    if stats is not None:
        stats.merge(merged)
    return merged


def resume_campaign(
    manifest: CampaignManifest,
    cache_root: Union[str, Path],
    **kwargs,
) -> ExecutionStats:
    """Finish an interrupted campaign: exactly :func:`run_campaign`.

    This alias exists because "resume" deserves a name in the API even
    though crash-safety makes it the same operation — worker startup
    hygiene already sweeps stale tmp files and orphaned leases, and
    completion is derived from the cache, so running again *is* resuming.
    """
    return run_campaign(manifest, cache_root, **kwargs)


def status_of(
    manifest: CampaignManifest,
    cache_root: Union[str, Path],
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
) -> CampaignStatus:
    """Point-in-time status: done (cache-derived), claimed (live leases),
    pending (the rest)."""
    cache = ResultCache(cache_root)
    leases = LeaseManager(cache_root, manifest.campaign_id, timeout=lease_timeout)
    return campaign_status(manifest, cache, claimed_keys=leases.held_keys())
