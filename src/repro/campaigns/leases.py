"""Filesystem leases: how campaign workers avoid duplicating work.

Workers coordinate **only** through the cache directory — no server, no
sockets, no locks beyond what POSIX file semantics give for free:

* **Claim** — ``os.open(path, O_CREAT | O_EXCL)`` on
  ``leases/<campaign>/<key>.lease``.  Exactly one process wins; the file
  body records the owner (host:pid:nonce) and claim time for debugging.
* **Heartbeat** — the owner touches the lease's mtime while working.  The
  campaign worker heartbeats between cells; long-running cells can call
  :meth:`Lease.heartbeat` themselves.
* **Stale reclamation** — a lease whose mtime is older than the timeout
  belongs to a dead or wedged worker.  Reclaiming renames it to a
  nonce-unique tombstone first: rename is atomic, so of N workers that
  notice the same stale lease exactly one wins the rename, and only the
  winner retries the ``O_EXCL`` claim.  The unlink-then-create shortcut
  would let two workers both believe they own the cell.
* **Release** — unlink.  A worker killed *after* writing its result but
  before releasing leaves an orphan; orphans over *done* cells are swept
  by :meth:`LeaseManager.sweep_orphans` (and are harmless meanwhile —
  nobody needs a lease on a completed cell).

Leases are an **optimization, not a correctness mechanism**: the result
cache is content-addressed and writes are atomic, so if mutual exclusion
ever fails the worst case is the same deterministic record computed twice
and written twice, bit-identically.  Everything here exists to make that
rare, not to make it impossible — which is why crash-safety is easy.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["Lease", "LeaseManager", "DEFAULT_LEASE_TIMEOUT", "default_owner"]

#: Seconds without a heartbeat before a lease is presumed dead.  Generous
#: by default (cells are usually sub-second; a worker heartbeats at least
#: once per cell) — chaos tests and CI shrink it to force reclamation.
DEFAULT_LEASE_TIMEOUT = 300.0


def default_owner() -> str:
    """A debuggable, collision-proof worker identity."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass
class Lease:
    """A held claim on one cell (returned by ``LeaseManager.try_claim``)."""

    key: str
    path: Path
    owner: str

    def heartbeat(self) -> bool:
        """Refresh the lease mtime; False if the lease vanished (stolen
        after a stall, or released twice) — the holder should treat its
        work as speculative and not panic: the cache write is idempotent.
        """
        try:
            os.utime(self.path)
            return True
        except OSError:
            return False


class LeaseManager:
    """Claim/heartbeat/reclaim/release over one campaign's lease dir."""

    def __init__(
        self,
        cache_root: Union[str, Path],
        campaign_id: str,
        owner: Optional[str] = None,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
    ):
        if timeout <= 0:
            raise ValueError("lease timeout must be > 0")
        self.dir = Path(cache_root) / "leases" / campaign_id
        self.owner = owner or default_owner()
        self.timeout = timeout
        #: Claims lost to another worker (fresh lease already present).
        self.contended = 0
        #: Stale leases taken over.
        self.reclaimed = 0

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.lease"

    def _create(self, path: Path, key: str) -> Optional[Lease]:
        """The O_EXCL claim attempt itself; None when somebody else won."""
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        with os.fdopen(fd, "w") as fh:
            json.dump({"owner": self.owner, "key": key, "claimed_at": time.time()}, fh)
        return Lease(key=key, path=path, owner=self.owner)

    def try_claim(self, key: str) -> Optional[Lease]:
        """Claim ``key``, reclaiming a stale lease if that is what holds it.

        Returns ``None`` on contention (someone else holds a *fresh* lease,
        or won a race for this one) — never blocks, never raises for the
        ordinary lost-race cases.  Callers loop over other cells and come
        back; backoff policy lives in the worker, not here.
        """
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        lease = self._create(path, key)
        if lease is not None:
            return lease
        # Held — by whom, and is it alive?
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            # Released between our O_EXCL and the stat: retry the claim.
            lease = self._create(path, key)
            if lease is None:
                self.contended += 1
            return lease
        if age <= self.timeout:
            self.contended += 1
            return None
        # Stale.  Atomically tombstone it (single rename winner), then
        # compete for a fresh claim like everyone else.
        tombstone = path.with_name(f"{path.name}.reclaim.{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, tombstone)
        except OSError:
            self.contended += 1  # another reclaimer won the rename
            return None
        tombstone.unlink(missing_ok=True)
        lease = self._create(path, key)
        if lease is None:
            self.contended += 1
            return lease
        self.reclaimed += 1
        return lease

    def release(self, lease: Lease) -> None:
        lease.path.unlink(missing_ok=True)

    def held_keys(self) -> List[str]:
        """Keys with a live (non-stale) lease right now — for status."""
        now = time.time()
        held = []
        for path in self.dir.glob("*.lease"):
            try:
                if now - path.stat().st_mtime <= self.timeout:
                    held.append(path.name[: -len(".lease")])
            except OSError:
                continue
        return held

    def sweep_orphans(self, done_keys) -> int:
        """Unlink leases over already-completed cells; returns the count.

        These are the droppings of workers killed between the cache write
        and the release.  Removing them is pure hygiene — no live worker
        wants a lease on a done cell — and racing an in-flight release is
        harmless (both unlink, one no-ops).  Leftover reclaim tombstones
        are swept here too.
        """
        removed = 0
        done = set(done_keys)
        for path in list(self.dir.glob("*.lease")):
            if path.name[: -len(".lease")] in done:
                path.unlink(missing_ok=True)
                removed += 1
        for path in list(self.dir.glob("*.reclaim.*")):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
