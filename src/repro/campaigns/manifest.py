"""Campaign manifests: a durable, content-addressed description of a grid.

A **campaign** is a frozen set of :class:`repro.runtime.RunSpec` cells —
typically a crash×delay×placement grid or a replica sweep — that outlives
any single process.  The manifest records, once, everything a worker needs
to join the campaign: each cell's spec (in canonical-JSON form) together
with its SHA-256 cache key, plus free-form grid metadata.  Like every
other durable artifact in this codebase it is content-addressed: the
campaign id is the SHA-256 of the sorted cell-key list, so the same grid
always has the same id, re-creating a campaign is idempotent, and a
manifest can never silently drift from the work it names.

**Completion is derived, not recorded.**  There is no bitmap, journal, or
"done" flag anywhere: a cell is complete iff its cache key resolves in the
shared :class:`repro.runtime.ResultCache`.  Interrupting a campaign
therefore costs nothing — resume is just "run the workers again", and a
fully completed campaign resumes with zero executions.  Coordination
between workers happens through lease files (:mod:`repro.campaigns.
leases`); the manifest itself is immutable.

Layout, inside the cache directory::

    <cache root>/campaigns/<campaign id>.json     the manifest (this module)
    <cache root>/leases/<campaign id>/...         claim files (leases.py)
    <cache root>/chaos/...                        chaos kill-slot markers

Everything lives under the cache root on purpose: pointing a second host
at the same directory (NFS, rsync, a shared volume) is all it takes to
join its workers to the campaign.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runtime.cache import ResultCache
from repro.runtime.spec import SPEC_SCHEMA, RunSpec

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignCell",
    "CampaignManifest",
    "CampaignStatus",
    "campaigns_dir",
    "manifest_path",
    "save_manifest",
    "load_manifest",
    "list_manifests",
    "resolve_campaign_id",
    "campaign_status",
]

#: Bumped whenever the manifest file format changes; stamped into every
#: manifest and checked on load, so a worker never consumes a grid written
#: under different semantics.
CAMPAIGN_SCHEMA = 1


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: a spec and its content-addressed key."""

    key: str
    spec: RunSpec


def _spec_from_payload(payload: Dict[str, Any]) -> RunSpec:
    """Rebuild a spec from its stored canonical form, schema-checked."""
    if payload.get("schema") != SPEC_SCHEMA:
        raise ValueError(
            f"manifest spec schema {payload.get('schema')!r} != current {SPEC_SCHEMA}"
        )
    return RunSpec(**payload["spec"])


@dataclass(frozen=True)
class CampaignManifest:
    """The frozen cell list plus grid metadata; id derived from content."""

    campaign_id: str
    cells: Tuple[CampaignCell, ...]
    meta: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def id_for(keys: Iterable[str]) -> str:
        """The campaign id: SHA-256 over the sorted, deduped cell keys.

        Deliberately independent of metadata and cell *order*: the id names
        the work, and the same grid re-described is the same campaign.
        """
        return sha256("\n".join(sorted(set(keys))).encode()).hexdigest()

    @classmethod
    def from_specs(
        cls, specs: Sequence[RunSpec], meta: Optional[Dict[str, Any]] = None
    ) -> "CampaignManifest":
        """Freeze a spec batch into a manifest (duplicates collapse —
        identical specs are the same cell by construction)."""
        if not specs:
            raise ValueError("a campaign needs at least one spec")
        cells: List[CampaignCell] = []
        seen = set()
        for spec in specs:
            key = ResultCache.key_for(spec)
            if key in seen:
                continue
            seen.add(key)
            cells.append(CampaignCell(key=key, spec=spec))
        return cls(
            campaign_id=cls.id_for(seen),
            cells=tuple(cells),
            meta=dict(meta or {}),
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "campaign": self.campaign_id,
            "meta": self.meta,
            "cells": [
                {"key": cell.key, "spec": json.loads(cell.spec.canonical_json())}
                for cell in self.cells
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CampaignManifest":
        """Parse and *verify* a stored manifest.

        Tamper-evident like the fuzz corpus: every cell's spec is rebuilt
        and re-hashed, and the campaign id is recomputed — an edited spec,
        a swapped key, or a renamed file all fail loudly rather than
        executing the wrong grid under the right name.
        """
        if payload.get("schema") != CAMPAIGN_SCHEMA:
            raise ValueError(
                f"campaign schema {payload.get('schema')!r} != current {CAMPAIGN_SCHEMA}"
            )
        cells = []
        for entry in payload["cells"]:
            spec = _spec_from_payload(entry["spec"])
            key = ResultCache.key_for(spec)
            if key != entry["key"]:
                raise ValueError(
                    f"manifest cell key mismatch for {entry['key'][:12]}…: "
                    "stored spec re-hashes differently (edited or corrupt manifest)"
                )
            cells.append(CampaignCell(key=key, spec=spec))
        campaign_id = cls.id_for(c.key for c in cells)
        if payload.get("campaign") != campaign_id:
            raise ValueError(
                f"campaign id mismatch: stored {str(payload.get('campaign'))[:12]}…, "
                f"recomputed {campaign_id[:12]}…"
            )
        return cls(
            campaign_id=campaign_id,
            cells=tuple(cells),
            meta=dict(payload.get("meta", {})),
        )

    def keys(self) -> List[str]:
        return [cell.key for cell in self.cells]

    def specs(self) -> List[RunSpec]:
        return [cell.spec for cell in self.cells]


# ---------------------------------------------------------------------------
# Persistence (inside the cache root, atomic writes, written once)
# ---------------------------------------------------------------------------


def campaigns_dir(cache_root: Union[str, Path]) -> Path:
    return Path(cache_root) / "campaigns"


def manifest_path(cache_root: Union[str, Path], campaign_id: str) -> Path:
    return campaigns_dir(cache_root) / f"{campaign_id}.json"


def save_manifest(manifest: CampaignManifest, cache_root: Union[str, Path]) -> Path:
    """Persist the manifest (atomic write-once); returns its path.

    Content-addressing makes this idempotent: if the file already exists it
    is the same grid by construction (the id is the hash of the keys), so
    the existing file is kept untouched — "written once" holds even when N
    processes race to create the same campaign.
    """
    path = manifest_path(cache_root, manifest.campaign_id)
    if path.exists():
        return path
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(manifest.to_payload(), sort_keys=True, indent=1))
    os.replace(tmp, path)
    return path


def load_manifest(cache_root: Union[str, Path], campaign_id: str) -> CampaignManifest:
    path = manifest_path(cache_root, campaign_id)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(f"no campaign manifest {campaign_id!r} under {cache_root}")
    return CampaignManifest.from_payload(payload)


def list_manifests(cache_root: Union[str, Path]) -> List[str]:
    """All campaign ids with a manifest under ``cache_root``, sorted."""
    return sorted(p.stem for p in campaigns_dir(cache_root).glob("*.json"))


def resolve_campaign_id(cache_root: Union[str, Path], prefix: str) -> str:
    """Expand a unique id prefix (CLI convenience, git style)."""
    matches = [cid for cid in list_manifests(cache_root) if cid.startswith(prefix)]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ValueError(f"no campaign matching {prefix!r} under {cache_root}")
    raise ValueError(
        f"ambiguous campaign prefix {prefix!r}: " + ", ".join(m[:12] for m in matches)
    )


# ---------------------------------------------------------------------------
# Derived status
# ---------------------------------------------------------------------------


@dataclass
class CampaignStatus:
    """A point-in-time view of a campaign, derived entirely from disk."""

    campaign_id: str
    total: int
    done: int
    claimed: int
    pending: int

    @property
    def complete(self) -> bool:
        return self.done == self.total

    def summary(self) -> str:
        return (
            f"campaign {self.campaign_id[:12]}: {self.done}/{self.total} done, "
            f"{self.claimed} claimed, {self.pending} pending"
        )


def campaign_status(
    manifest: CampaignManifest,
    cache: ResultCache,
    claimed_keys: Iterable[str] = (),
) -> CampaignStatus:
    """Derive completion from the cache (existence check per cell).

    ``claimed_keys`` — live lease holders from a
    :class:`repro.campaigns.leases.LeaseManager` scan — splits the
    not-done remainder into in-flight vs. untouched.
    """
    cache.refresh()
    done = sum(1 for cell in manifest.cells if cache.contains_key(cell.key))
    live = set(claimed_keys)
    claimed = sum(
        1 for cell in manifest.cells if cell.key in live and not cache.contains_key(cell.key)
    )
    total = len(manifest.cells)
    return CampaignStatus(
        campaign_id=manifest.campaign_id,
        total=total,
        done=done,
        claimed=claimed,
        pending=total - done - claimed,
    )
