"""repro.campaigns — crash-safe sharded campaigns over the result cache.

The scale-out layer above :mod:`repro.runtime`: a **campaign** freezes a
grid of specs into a content-addressed manifest
(:mod:`~repro.campaigns.manifest`), and any number of worker processes —
on any number of hosts sharing the cache directory — consume it by
work-stealing (:mod:`~repro.campaigns.worker`), coordinating *only*
through filesystem leases (:mod:`~repro.campaigns.leases`).

The design collapses to one invariant: **a cell is done iff its spec's
SHA-256 key resolves in the cache.**  Nothing records progress, so nothing
can record it wrong — interrupt anything at any instruction and "resume"
is simply running workers again, which re-executes exactly the missing
cells and replays everything else as cache hits.  Results are
bit-identical to a clean ``SerialExecutor`` run because every cell is a
pure function of its spec; the chaos harness
(:mod:`repro.testing.chaos`) SIGKILLs workers, tears files, and orphans
leases to prove it.

CLI: ``python -m repro campaign create|run|workers|status|resume``; the
full tour lives in ``docs/CAMPAIGNS.md``.
"""

from repro.campaigns.leases import DEFAULT_LEASE_TIMEOUT, Lease, LeaseManager, default_owner
from repro.campaigns.manifest import (
    CAMPAIGN_SCHEMA,
    CampaignCell,
    CampaignManifest,
    CampaignStatus,
    campaign_status,
    campaigns_dir,
    list_manifests,
    load_manifest,
    manifest_path,
    resolve_campaign_id,
    save_manifest,
)
from repro.campaigns.worker import (
    DEFAULT_IDLE_TIMEOUT,
    resume_campaign,
    run_campaign,
    run_worker,
    status_of,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignCell",
    "CampaignManifest",
    "CampaignStatus",
    "campaign_status",
    "campaigns_dir",
    "list_manifests",
    "load_manifest",
    "manifest_path",
    "resolve_campaign_id",
    "save_manifest",
    "Lease",
    "LeaseManager",
    "default_owner",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_IDLE_TIMEOUT",
    "run_worker",
    "run_campaign",
    "resume_campaign",
    "status_of",
]
