"""The fuzz campaign driver: sample, execute, score, exploit, shrink.

:class:`FuzzCampaign` runs a fixed-budget loop: a tunable controller
proposes a schedule genome (random walk, biased toward genomes that
previously raised rounds), the genome compiles to a
:class:`~repro.runtime.spec.RunSpec`, and the spec — together with its
clean-synchronous twin — executes through :func:`repro.runtime.api.
execute`, so every run is failure-isolated, engine-dispatchable, and
lands in the content-addressed result cache.  The score is **regret**:
``rounds - twin.rounds``, how far past the paper-model baseline the
schedule pushed the run.

Aborted candidates (the oblivious schedules raise under non-synchronous
activation; timeouts hit ``max_rounds``) are ordinary isolated outcomes:
counted, reported, never corpus-worthy.  Everything is deterministic
given the campaign seed — the controller's randomness never depends on
wall clock or cache state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.runtime.api import ExecutionStats, execute
from repro.runtime.cache import ResultCache
from repro.runtime.executor import Executor
from repro.runtime.spec import RunOutcome, RunSpec
from repro.scenarios.model import clean_twin
from repro.search.shrink import shrink_genome
from repro.search.space import (
    ScheduleGenome,
    get_target,
    mutate_genome,
    sample_genome,
    target_names,
)

__all__ = ["FuzzResult", "CampaignReport", "FuzzCampaign"]


@dataclass
class FuzzResult:
    """One evaluated genome: the compiled spec, its outcome, and the score."""

    genome: ScheduleGenome
    spec: RunSpec
    key: str
    iteration: int = -1
    rounds: Optional[int] = None
    baseline_rounds: Optional[int] = None
    #: Full ``GatheringRun.to_dict()`` payload (what the corpus stores and
    #: replays compare against, bit for bit).
    record: Optional[Dict] = None
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def regret(self) -> Optional[int]:
        """Rounds past the clean-synchronous twin (the campaign's score)."""
        if self.rounds is None or self.baseline_rounds is None:
            return None
        return self.rounds - self.baseline_rounds

    @property
    def bound(self) -> Optional[int]:
        return get_target(self.genome.target).bound


@dataclass
class CampaignReport:
    """Everything a campaign found, plus the runtime accounting."""

    seed: int
    budget: int
    results: List[FuzzResult] = field(default_factory=list)
    #: Minimized winners (regret >= min_regret), one per distinct minimal
    #: spec, sorted by descending regret.
    minimized: List[FuzzResult] = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def aborted(self) -> List[FuzzResult]:
        return [r for r in self.results if not r.ok]

    @property
    def positives(self) -> List[FuzzResult]:
        return [r for r in self.results if r.ok and (r.regret or 0) > 0]

    def best(self) -> Dict[str, FuzzResult]:
        """Highest-regret successful result per target."""
        out: Dict[str, FuzzResult] = {}
        for r in self.results:
            if not r.ok or r.regret is None:
                continue
            cur = out.get(r.genome.target)
            if cur is None or r.regret > (cur.regret or 0):
                out[r.genome.target] = r
        return out


class FuzzCampaign:
    """A seeded, budgeted adversarial schedule search.

    Parameters
    ----------
    seed:
        Drives every sampling/mutation decision; same seed + same budget =
        same campaign, byte for byte.
    budget:
        How many candidate schedules to evaluate.
    targets:
        Target names to explore (default: all of
        :data:`repro.search.space.TARGETS`).
    engine:
        Backend name forwarded to :func:`execute` (``None`` = default).
    cache / executor:
        The ordinary runtime knobs; with a cache, a re-run campaign is
        fully cache-hit.
    explore:
        Probability of a fresh random sample per iteration; the rest of
        the mass mutates a previous positive-regret genome (weighted
        toward higher regret).
    pool:
        How many elite genomes the controller keeps as mutation parents.
    min_regret:
        Winners below this regret are not minimized/serialized.
    """

    def __init__(
        self,
        seed: int = 0,
        budget: int = 50,
        targets: Optional[List[str]] = None,
        engine: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        executor: Optional[Executor] = None,
        explore: float = 0.4,
        pool: int = 8,
        min_regret: int = 1,
    ):
        if budget < 1:
            raise ValueError("fuzz campaign needs budget >= 1")
        if not 0.0 <= explore <= 1.0:
            raise ValueError("explore must be in [0, 1]")
        unknown = set(targets or []) - set(target_names())
        if unknown:
            raise ValueError(
                f"unknown fuzz targets {sorted(unknown)}; "
                f"registered targets: {target_names()}"
            )
        self.seed = seed
        self.budget = budget
        self.targets = sorted(targets) if targets else target_names()
        self.engine = engine
        self.cache = cache
        self.executor = executor
        self.explore = explore
        self.pool = pool
        self.min_regret = min_regret
        self.stats = ExecutionStats()
        self._rng = random.Random(seed)
        self._elites: List[FuzzResult] = []
        #: canonical_json -> outcome; keeps the campaign (and the shrinker)
        #: from re-running a spec even without a disk cache.
        self._memo: Dict[str, RunOutcome] = {}

    # -- execution ---------------------------------------------------------
    def _outcome(self, spec: RunSpec) -> RunOutcome:
        key = spec.canonical_json()
        memoized = self._memo.get(key)
        if memoized is not None:
            return memoized
        out = execute(
            [spec],
            executor=self.executor,
            cache=self.cache,
            engine=self.engine,
            stats=self.stats,
        ).outcomes[0]
        self._memo[key] = out
        return out

    def evaluate(self, genome: ScheduleGenome, iteration: int = -1) -> FuzzResult:
        """Run one genome (and its clean twin) and score it."""
        spec = genome.compile()
        result = FuzzResult(
            genome=genome,
            spec=spec,
            key=ResultCache.key_for(spec),
            iteration=iteration,
        )
        out = self._outcome(spec)
        if not out.ok:
            result.error = out.error
            result.error_type = out.error_type
            return result
        result.rounds = out.run.rounds
        result.record = out.run.to_dict()
        twin = clean_twin(spec)
        twin_out = self._outcome(twin)
        if twin_out.ok:
            result.baseline_rounds = twin_out.run.rounds
        else:  # pragma: no cover - curated targets always run clean
            result.error = f"clean twin failed: {twin_out.error}"
            result.error_type = twin_out.error_type
        return result

    # -- controller --------------------------------------------------------
    def _propose(self) -> ScheduleGenome:
        if self._elites and self._rng.random() >= self.explore:
            # weight parents by regret so the walk drifts toward schedules
            # that already raised rounds (simsched's good-sequence bias)
            weights = [max(r.regret or 0, 1) for r in self._elites]
            parent = self._rng.choices(self._elites, weights=weights, k=1)[0]
            return mutate_genome(parent.genome, self._rng)
        return sample_genome(self._rng, self.targets)

    def _observe(self, result: FuzzResult) -> None:
        if result.ok and (result.regret or 0) > 0:
            self._elites.append(result)
            self._elites.sort(key=lambda r: -(r.regret or 0))
            del self._elites[self.pool :]

    # -- the campaign ------------------------------------------------------
    def run(
        self, progress: Optional[Callable[[FuzzResult], None]] = None
    ) -> CampaignReport:
        """Run the full budget, then minimize the winners.

        ``progress`` (if given) fires once per evaluated candidate.
        """
        report = CampaignReport(seed=self.seed, budget=self.budget, stats=self.stats)
        for i in range(self.budget):
            result = self.evaluate(self._propose(), iteration=i)
            self._observe(result)
            report.results.append(result)
            if progress is not None:
                progress(result)
        report.minimized = self._minimize_winners(report)
        return report

    def _minimize_winners(self, report: CampaignReport) -> List[FuzzResult]:
        """Shrink the best result per target; dedup identical minima."""
        minimized: Dict[str, FuzzResult] = {}
        for target, best in sorted(report.best().items()):
            if (best.regret or 0) < self.min_regret:
                continue
            small = self.minimize(best)
            minimized.setdefault(small.key, small)
        return sorted(
            minimized.values(), key=lambda r: (-(r.regret or 0), r.key)
        )

    def minimize(self, result: FuzzResult, max_evals: int = 200) -> FuzzResult:
        """Greedily shrink a winner while preserving its regret."""
        target_regret = result.regret
        if target_regret is None:
            raise ValueError("cannot minimize an errored result")

        def predicate(genome: ScheduleGenome) -> Optional[FuzzResult]:
            candidate = self.evaluate(genome, iteration=result.iteration)
            if candidate.ok and (candidate.regret or 0) >= target_regret:
                return candidate
            return None

        small = shrink_genome(result.genome, predicate, max_evals=max_evals)
        return small if small is not None else result
