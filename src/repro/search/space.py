"""The fuzzer's search space: curated targets × schedule genomes.

A **target** is a small, fast, fully seed-pinned base experiment the
campaign perturbs — the same instances the curated scenarios built their
fault and activation studies on, so every found schedule is directly
comparable to hand-curated results.  A **genome** is the declarative
perturbation: a fault table, an activation model, and optional
placement/label seed re-rolls.  Compiling a genome yields an ordinary
:class:`~repro.runtime.spec.RunSpec`, which is the whole trick — found
schedules inherit caching, parallel execution, engine dispatch, and
scenario registration for free.

Two mode families, because the two schedule classes break differently
(see the scenario registry's module docstring):

* ``"faults"`` targets run the paper's oblivious schedules, which
  complete under crash/delay campaigns (damage shows up as mis-detection
  or extra rounds, never as an exception);
* ``"activation"`` targets run the schedule-free baselines — the only
  algorithms that survive non-synchronous activation (the oblivious
  schedules detect the desync and abort, which the campaign records as an
  aborted candidate, not a find).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core import bounds
from repro.runtime.spec import RunSpec

__all__ = [
    "FuzzTarget",
    "ScheduleGenome",
    "TARGETS",
    "target_names",
    "sample_genome",
    "mutate_genome",
]


@dataclass(frozen=True)
class FuzzTarget:
    """One curated base instance the campaign perturbs."""

    name: str
    base: RunSpec
    #: Which genome families apply: ``"faults"`` and/or ``"activation"``.
    modes: Tuple[str, ...]
    #: The paper's round bound for the *clean* run, when the schedule
    #: arithmetic gives one (reported next to found regret).
    bound: Optional[int] = None
    description: str = ""


#: Undispersed placement on ring(8) with seed 8: starts ``[5, 3, 3]`` —
#: index 0 the lone waiter, indices 1–2 the co-located pair (the same
#: geometry the curated fault scenarios use).
_WAITER_SEED = 8

TARGETS: Dict[str, FuzzTarget] = {
    t.name: t
    for t in (
        FuzzTarget(
            name="undispersed-ring8",
            base=RunSpec(
                algorithm="undispersed",
                family="ring",
                graph={"n": 8},
                placement="undispersed",
                k=3,
                placement_args={"seed": _WAITER_SEED},
                labels_args={"seed": _WAITER_SEED},
                uses_uxs=False,
                max_rounds=100_000,
            ),
            modes=("faults",),
            bound=bounds.undispersed_rounds(8),
            description="Undispersed-Gathering waiter/pair geometry on ring(8)",
        ),
        FuzzTarget(
            name="faster-ring8",
            base=RunSpec(
                algorithm="faster",
                family="ring",
                graph={"n": 8},
                placement="scatter",
                k=5,
                placement_args={"seed": 1},
                labels_args={"seed": 8},
                max_rounds=500_000,
            ),
            modes=("faults",),
            description="Faster-Gathering in the n³ regime on ring(8)",
        ),
        FuzzTarget(
            name="random-walk-ring12",
            base=RunSpec(
                algorithm="random_walk",
                family="ring",
                graph={"n": 12},
                placement="dispersed",
                k=3,
                placement_args={"seed": 4},
                labels_args={"seed": 4},
                algorithm_args={"seed": 4},
                uses_uxs=False,
                stop_on_gather=True,
                max_rounds=200_000,
            ),
            modes=("activation", "faults"),
            description="Random-walk baseline (schedule-free, survives weak activation)",
        ),
        FuzzTarget(
            name="tz-ring8",
            base=RunSpec(
                algorithm="tz",
                family="ring",
                graph={"n": 8},
                placement="dispersed",
                k=2,
                placement_args={"seed": 3},
                labels_args={"seed": 3},
                stop_on_gather=True,
                max_rounds=200_000,
            ),
            modes=("activation",),
            description="TZ rendezvous pair (schedule-free, survives weak activation)",
        ),
    )
}


def target_names() -> List[str]:
    return sorted(TARGETS)


def get_target(name: str) -> FuzzTarget:
    if name not in TARGETS:
        raise ValueError(f"unknown fuzz target {name!r}; registered targets: {target_names()}")
    return TARGETS[name]


@dataclass(frozen=True)
class ScheduleGenome:
    """A declarative perturbation of one target — the unit the fuzzer
    samples, mutates, shrinks, and serializes.

    Plain JSON-serializable data throughout, so a genome round-trips
    through the corpus format and its compiled spec is cache-stable.
    """

    target: str
    faults: Dict[str, Dict[str, int]] = field(default_factory=dict)
    activation: str = "sync"
    activation_args: Dict[str, Any] = field(default_factory=dict)
    #: Optional re-rolls of the target's pinned placement/label seeds.
    placement_seed: Optional[int] = None
    labels_seed: Optional[int] = None

    def compile(self) -> RunSpec:
        """The concrete :class:`RunSpec` this genome describes."""
        base = get_target(self.target).base
        placement_args = dict(base.placement_args)
        labels_args = dict(base.labels_args)
        if self.placement_seed is not None:
            placement_args["seed"] = self.placement_seed
        if self.labels_seed is not None:
            labels_args["seed"] = self.labels_seed
        return replace(
            base,
            placement_args=placement_args,
            labels_args=labels_args,
            faults=dict(self.faults),
            activation=self.activation,
            activation_args=dict(self.activation_args),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "faults": {k: dict(v) for k, v in self.faults.items()},
            "activation": self.activation,
            "activation_args": dict(self.activation_args),
            "placement_seed": self.placement_seed,
            "labels_seed": self.labels_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScheduleGenome":
        return cls(
            target=data["target"],
            faults={k: dict(v) for k, v in data.get("faults", {}).items()},
            activation=data.get("activation", "sync"),
            activation_args=dict(data.get("activation_args", {})),
            placement_seed=data.get("placement_seed"),
            labels_seed=data.get("labels_seed"),
        )


# ---------------------------------------------------------------------------
# Sampling and mutation
# ---------------------------------------------------------------------------

#: Activation samplers: ``name -> options drawn from the rng``.  Budgets
#: start at 1 (0 is the disarmed no-op — a wasted iteration).
_ACTIVATION_SAMPLERS = {
    "adversarial": lambda rng: {"budget": rng.randint(1, 2)},
    "round-robin": lambda rng: {"groups": rng.randint(2, 4)},
    "random": lambda rng: {
        "seed": rng.randrange(2**16),
        "rate": rng.choice([0.25, 0.5, 0.75]),
    },
    "biased": lambda rng: {
        "seed": rng.randrange(2**16),
        "budget": 1,
        "bias": rng.choice([2.0, 4.0, 8.0]),
    },
}


def _sample_faults(rng: random.Random, k: int) -> Dict[str, Dict[str, int]]:
    """A random crash/delay table over a ``k``-robot fleet.

    Uniform delays get deliberate extra probability mass: shifting the
    whole fleet is the one fault schedule *guaranteed* to raise rounds
    without breaking detection (rounds = clean + delay + 1), so it anchors
    the campaign with a reliable positive-regret family while the rest of
    the mass explores asymmetric damage.
    """
    if rng.random() < 0.35:
        delay = rng.randint(1, 20)
        return {"delay": {str(i): delay for i in range(k)}}
    plan: Dict[str, Dict[str, int]] = {"crash": {}, "delay": {}}
    for i in range(k):
        roll = rng.random()
        if roll < 0.25:
            plan["crash"][str(i)] = rng.randint(0, 20)
        elif roll < 0.60:
            plan["delay"][str(i)] = rng.randint(1, 20)
    plan = {kind: table for kind, table in plan.items() if table}
    if not plan:
        # an empty plan is the clean twin — always perturb at least one robot
        plan = {"delay": {str(rng.randrange(k)): rng.randint(1, 20)}}
    return plan


def sample_genome(
    rng: random.Random, targets: Optional[List[str]] = None
) -> ScheduleGenome:
    """Draw a fresh random genome (the controller's exploration move)."""
    names = sorted(targets) if targets else target_names()
    target = get_target(rng.choice(names))
    mode = rng.choice(target.modes)
    placement_seed = rng.randrange(2**16) if rng.random() < 0.25 else None
    labels_seed = rng.randrange(2**16) if rng.random() < 0.25 else None
    if mode == "faults":
        return ScheduleGenome(
            target=target.name,
            faults=_sample_faults(rng, target.base.k),
            placement_seed=placement_seed,
            labels_seed=labels_seed,
        )
    name = rng.choice(sorted(_ACTIVATION_SAMPLERS))
    return ScheduleGenome(
        target=target.name,
        activation=name,
        activation_args=_ACTIVATION_SAMPLERS[name](rng),
        placement_seed=placement_seed,
        labels_seed=labels_seed,
    )


def mutate_genome(genome: ScheduleGenome, rng: random.Random) -> ScheduleGenome:
    """One random local edit (the controller's exploitation move).

    Mutations stay inside the genome's mode family — a fault schedule
    mutates its fault table, an activation schedule its model options —
    plus occasional placement/label seed re-rolls for either family.
    """
    roll = rng.random()
    if roll < 0.15:
        return replace(genome, placement_seed=rng.randrange(2**16))
    if roll < 0.25:
        return replace(genome, labels_seed=rng.randrange(2**16))
    if genome.faults:
        faults = {kind: dict(table) for kind, table in genome.faults.items()}
        kind = rng.choice(sorted(faults))
        table = faults[kind]
        index = rng.choice(sorted(table))
        low = 1 if kind == "delay" else 0
        if rng.random() < 0.5:
            table[index] = max(low, table[index] + rng.choice([-5, -1, 1, 5]))
        else:
            k = get_target(genome.target).base.k
            other = str(rng.randrange(k))
            if other in table and len(table) > 1 and rng.random() < 0.5:
                del table[other]
            else:
                table[other] = rng.randint(low, 20)
        return replace(genome, faults={k_: t for k_, t in faults.items() if t})
    if genome.activation != "sync":
        # re-draw the options for the same model (seeded models explore
        # their stream space; budgeted models jiggle the budget)
        return replace(
            genome,
            activation_args=_ACTIVATION_SAMPLERS[genome.activation](rng),
        )
    return sample_genome(rng, [genome.target])
