"""Generative adversarial schedule search (the fuzz campaign subsystem).

The paper's round bounds are adversarial claims; the curated scenario
registry probes them with hand-picked schedules.  This package searches
for worst cases *generatively*: a seeded campaign samples schedules
(activation interleavings × fault plans × placements) over small curated
target instances, scores each run's **regret** — rounds past the
clean-synchronous twin — through the ordinary runtime layer (so every run
lands in the content-addressed :class:`~repro.runtime.cache.ResultCache`),
greedily shrinks the winners to minimal reproducible schedules, and
serializes them to a JSON corpus that registers as first-class
:class:`~repro.scenarios.model.Scenario` entries.

CLI: ``python -m repro fuzz run|corpus|replay`` — see ``docs/FUZZING.md``.
"""

from repro.search.campaign import CampaignReport, FuzzCampaign, FuzzResult
from repro.search.corpus import (
    CORPUS_SCHEMA,
    CorpusEntry,
    ReplayOutcome,
    entry_from_result,
    load_corpus,
    load_entry,
    register_corpus,
    replay_entry,
    replayable_engines,
    save_entry,
    scenario_for,
)
from repro.search.shrink import shrink_genome
from repro.search.space import (
    TARGETS,
    FuzzTarget,
    ScheduleGenome,
    mutate_genome,
    sample_genome,
    target_names,
)

__all__ = [
    "FuzzCampaign",
    "CampaignReport",
    "FuzzResult",
    "FuzzTarget",
    "ScheduleGenome",
    "TARGETS",
    "target_names",
    "sample_genome",
    "mutate_genome",
    "shrink_genome",
    "CORPUS_SCHEMA",
    "CorpusEntry",
    "ReplayOutcome",
    "entry_from_result",
    "save_entry",
    "load_entry",
    "load_corpus",
    "register_corpus",
    "replay_entry",
    "replayable_engines",
    "scenario_for",
]
