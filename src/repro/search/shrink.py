"""Greedy trace minimization for found schedules.

A raw winner usually carries freight: fault entries that don't matter,
values larger than needed, seed re-rolls that changed nothing.  The
shrinker walks a fixed candidate order — drop whole genes first, then
shrink values toward their floors — re-running each candidate through the
campaign's (memoized, cached) evaluator and keeping it only when the
property holds, to a fixpoint.  The property is the caller's: the
campaign passes "regret is still at least the winner's regret", so the
minimized schedule reproduces the *same* worst case, not a weaker one.

Deterministic: candidate order is a pure function of the genome, and
evaluation is deterministic, so the same winner always shrinks to the
same minimum.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Optional, TypeVar

from repro.search.space import ScheduleGenome

__all__ = ["shrink_candidates", "shrink_genome"]

R = TypeVar("R")


def _without(table: dict, key: str) -> dict:
    out = {k: v for k, v in table.items() if k != key}
    return out


def shrink_candidates(genome: ScheduleGenome) -> Iterator[ScheduleGenome]:
    """Strictly-simpler variants of ``genome``, most aggressive first.

    Order: drop seed re-rolls, drop whole fault entries, shrink fault
    values (halve, then floor), then simplify activation options (smaller
    budgets/groups, canonical rate/bias/seed).
    """
    if genome.placement_seed is not None:
        yield replace(genome, placement_seed=None)
    if genome.labels_seed is not None:
        yield replace(genome, labels_seed=None)

    for kind in sorted(genome.faults):
        table = genome.faults[kind]
        for index in sorted(table, key=int):
            smaller = {k: t for k, t in genome.faults.items() if k != kind}
            rest = _without(table, index)
            if rest:
                smaller[kind] = rest
            yield replace(genome, faults=smaller)
    for kind in sorted(genome.faults):
        floor = 1 if kind == "delay" else 0
        table = genome.faults[kind]
        for index in sorted(table, key=int):
            value = table[index]
            for candidate in (floor, value // 2):
                if floor <= candidate < value:
                    shrunk = {k: dict(t) for k, t in genome.faults.items()}
                    shrunk[kind][index] = candidate
                    yield replace(genome, faults=shrunk)

    args = genome.activation_args
    if genome.activation != "sync":
        for key, floor in (("budget", 1), ("groups", 2)):
            if args.get(key, floor) > floor:
                yield replace(genome, activation_args={**args, key: floor})
        if args.get("rate") not in (None, 0.5):
            yield replace(genome, activation_args={**args, "rate": 0.5})
        if args.get("bias") not in (None, 4.0):
            yield replace(genome, activation_args={**args, "bias": 4.0})
        if args.get("seed", 0) != 0:
            yield replace(genome, activation_args={**args, "seed": 0})


def shrink_genome(
    genome: ScheduleGenome,
    predicate: Callable[[ScheduleGenome], Optional[R]],
    max_evals: int = 200,
) -> Optional[R]:
    """Greedy shrink to a fixpoint.

    ``predicate(candidate)`` returns a truthy result when the candidate
    still exhibits the property (the campaign returns the re-evaluated
    :class:`~repro.search.campaign.FuzzResult`), or ``None`` to reject.
    Returns the predicate's result for the smallest accepted genome, or
    ``None`` if no candidate was ever accepted (the input is already
    minimal — callers keep the original).  ``max_evals`` bounds predicate
    calls so a pathological plateau cannot stall a campaign.
    """
    best: Optional[R] = None
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in shrink_candidates(genome):
            if evals >= max_evals:
                break
            evals += 1
            result = predicate(candidate)
            if result is not None:
                genome, best = candidate, result
                improved = True
                break
    return best
