"""The fuzz corpus: minimized worst cases as JSON, replayable as scenarios.

One corpus entry is one minimized schedule: the genome, its compiled
:class:`~repro.runtime.spec.RunSpec` payload, the full result record it
reproduced, the clean-twin baseline, and the content-addressed cache key
(the SHA-256 of the spec's canonical JSON — the same identity
``scenarios describe`` prints and the result cache files are named by).
Entries are one-file-per-case JSON in a corpus directory, safe to commit,
diff, and upload as CI artifacts.

``register_corpus`` turns entries into first-class
:class:`~repro.scenarios.model.Scenario` registrations, so a found case
immediately gains everything curated scenarios have: ``scenarios
describe`` identity printing, ``scenarios run`` fault metrics with
clean-twin deltas, and sweep-level caching.

Replay is cross-engine: ``replay_entry`` re-executes the spec under a
named backend and compares the **entire** result record bit-for-bit
against the stored one.  :func:`replayable_engines` scopes the engine
list — the seed reference scheduler refuses non-synchronous activation by
contract (``supports_activation=False``), so activation-carrying entries
replay under every engine except ``reference``; fault-plan entries (plain
program wrappers, invisible to engines) replay under all five.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis.experiments import GatheringRun
from repro.runtime.api import ExecutionStats, execute
from repro.runtime.cache import ResultCache
from repro.runtime.executor import Executor
from repro.runtime.spec import SPEC_SCHEMA, RunSpec
from repro.scenarios.model import Scenario, clean_twin
from repro.scenarios.registry import register_scenario
from repro.search.space import ScheduleGenome, get_target
from repro.sim.engines import get_engine, list_engines

__all__ = [
    "CORPUS_SCHEMA",
    "CorpusEntry",
    "entry_from_result",
    "save_entry",
    "load_entry",
    "load_corpus",
    "scenario_for",
    "register_corpus",
    "replayable_engines",
    "ReplayOutcome",
    "replay_entry",
]

#: Bumped when the entry format changes; old corpora fail loudly, not
#: silently misreplay.
CORPUS_SCHEMA = 1


@dataclass
class CorpusEntry:
    """One minimized worst case, fully self-describing."""

    name: str
    target: str
    genome: ScheduleGenome
    spec: RunSpec
    #: SHA-256 of ``spec.canonical_json()`` — the result-cache identity.
    key: str
    rounds: int
    baseline_rounds: int
    record: Dict[str, Any]
    #: The paper's round bound for the clean target, when known.
    bound: Optional[int] = None
    #: Provenance: campaign seed/budget/iteration that found the raw case.
    found: Dict[str, Any] = field(default_factory=dict)

    @property
    def regret(self) -> int:
        return self.rounds - self.baseline_rounds

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": CORPUS_SCHEMA,
            "spec_schema": SPEC_SCHEMA,
            "name": self.name,
            "target": self.target,
            "genome": self.genome.to_dict(),
            "spec": asdict(self.spec),
            "key": self.key,
            "rounds": self.rounds,
            "baseline_rounds": self.baseline_rounds,
            "regret": self.regret,
            "bound": self.bound,
            "record": self.record,
            "found": dict(self.found),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CorpusEntry":
        if payload.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"corpus entry {payload.get('name')!r} has schema "
                f"{payload.get('schema')!r}; this build reads {CORPUS_SCHEMA}"
            )
        if payload.get("spec_schema") != SPEC_SCHEMA:
            raise ValueError(
                f"corpus entry {payload.get('name')!r} was written against "
                f"spec schema {payload.get('spec_schema')!r}; this build uses "
                f"{SPEC_SCHEMA} — its cache identity would not replay"
            )
        spec = RunSpec(**payload["spec"])
        key = ResultCache.key_for(spec)
        if key != payload["key"]:
            raise ValueError(
                f"corpus entry {payload.get('name')!r}: stored cache key "
                f"{payload['key'][:12]}… does not match the recomputed spec "
                f"identity {key[:12]}… (edited or corrupted entry)"
            )
        return cls(
            name=payload["name"],
            target=payload["target"],
            genome=ScheduleGenome.from_dict(payload["genome"]),
            spec=spec,
            key=key,
            rounds=payload["rounds"],
            baseline_rounds=payload["baseline_rounds"],
            record=dict(payload["record"]),
            bound=payload.get("bound"),
            found=dict(payload.get("found", {})),
        )


def entry_from_result(result, found: Optional[Dict[str, Any]] = None) -> CorpusEntry:
    """Build an entry from a successful :class:`~repro.search.campaign.
    FuzzResult` (normally a minimized one)."""
    if not result.ok or result.regret is None or result.record is None:
        raise ValueError("only successful, scored results enter the corpus")
    key = ResultCache.key_for(result.spec)
    return CorpusEntry(
        name=f"fuzz-{result.genome.target}-{key[:10]}",
        target=result.genome.target,
        genome=result.genome,
        spec=result.spec,
        key=key,
        rounds=result.rounds,
        baseline_rounds=result.baseline_rounds,
        record=dict(result.record),
        bound=get_target(result.genome.target).bound,
        found=dict(found or {}),
    )


# ---------------------------------------------------------------------------
# Disk format
# ---------------------------------------------------------------------------


def save_entry(entry: CorpusEntry, corpus_dir: Union[str, Path]) -> Path:
    """Write one entry as ``<corpus_dir>/<name>.json`` (pretty, sorted)."""
    root = Path(corpus_dir)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{entry.name}.json"
    path.write_text(json.dumps(entry.to_payload(), sort_keys=True, indent=1) + "\n")
    return path


def load_entry(path: Union[str, Path]) -> CorpusEntry:
    return CorpusEntry.from_payload(json.loads(Path(path).read_text()))


def load_corpus(corpus_dir: Union[str, Path]) -> List[CorpusEntry]:
    """All entries in a corpus directory, sorted by name (stable order)."""
    root = Path(corpus_dir)
    return [load_entry(p) for p in sorted(root.glob("*.json"))]


# ---------------------------------------------------------------------------
# Scenario registration
# ---------------------------------------------------------------------------


def scenario_for(entry: CorpusEntry) -> Scenario:
    """The first-class :class:`Scenario` form of a corpus entry."""
    target = get_target(entry.target)
    bound_note = (
        f"  Paper bound for the clean target: {entry.bound} rounds."
        if entry.bound is not None
        else ""
    )
    return Scenario(
        name=entry.name,
        title=f"Fuzzer-found worst case on {entry.target} (regret +{entry.regret})",
        description=(
            f"Minimized schedule found by the adversarial fuzz campaign "
            f"(seed {entry.found.get('seed', '?')}, iteration "
            f"{entry.found.get('iteration', '?')}) against "
            f"{target.description or entry.target}.{bound_note}"
        ),
        expectation=(
            f"Replays bit-identically under every supporting engine: "
            f"rounds={entry.rounds}, {entry.regret} past the clean-sync twin "
            f"({entry.baseline_rounds})."
        ),
        specs=(entry.spec,),
        tags=("fuzz", entry.target),
        paper="adversarial schedule search (docs/FUZZING.md)",
    )


def register_corpus(
    corpus: Union[str, Path, List[CorpusEntry]], replace: bool = False
) -> List[Scenario]:
    """Register every corpus entry as a scenario; returns the scenarios.

    Accepts a directory or a loaded entry list.  Auto-registered entries
    are ordinary registry citizens — remove them with
    :func:`repro.scenarios.registry.unregister_scenario`.
    """
    entries = corpus if isinstance(corpus, list) else load_corpus(corpus)
    return [register_scenario(scenario_for(e), replace=replace) for e in entries]


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replayable_engines(spec: RunSpec) -> List[str]:
    """Engines that can replay ``spec`` through :func:`execute`.

    Fault plans are program-level wrappers, invisible to every engine.
    Non-synchronous activation is a scheduler feature: the seed reference
    engine declares ``supports_activation=False`` and refuses by contract.
    Batch engines always qualify — ``execute`` routes non-clean or
    ungroupable specs through the default scalar path, as documented.
    """
    needs_activation = spec.activation != "sync" or bool(spec.activation_args)
    names = []
    for name in list_engines():
        caps = get_engine(name).capabilities
        if caps.supports_batch or caps.supports_activation or not needs_activation:
            names.append(name)
    return names


@dataclass
class ReplayOutcome:
    """One entry replayed under one engine, compared to the stored record."""

    entry: CorpusEntry
    engine: Optional[str]
    record: Optional[GatheringRun] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.record is not None and self.error is None

    @property
    def matches(self) -> bool:
        """Bit-identical to the stored record (every field, incl. per-robot
        stats and metrics extras)."""
        return self.ok and self.record.to_dict() == self.entry.record


def replay_entry(
    entry: CorpusEntry,
    engine: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    stats: Optional[ExecutionStats] = None,
) -> ReplayOutcome:
    """Re-execute one corpus entry under ``engine`` and compare records.

    Also re-runs the clean twin so the baseline lands in (or hits) the
    same cache the campaign used.
    """
    result = execute(
        [entry.spec, clean_twin(entry.spec)],
        executor=executor,
        cache=cache,
        engine=engine,
        stats=stats,
    )
    out = result.outcomes[0]
    if not out.ok:
        return ReplayOutcome(entry=entry, engine=engine, error=out.error)
    return ReplayOutcome(entry=entry, engine=engine, record=out.run)
