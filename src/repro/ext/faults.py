"""Composable, declarative fault plans.

:mod:`repro.ext.crash_faults` and :mod:`repro.ext.startup_delay` are
program-factory wrappers: perfect for hand-built worlds, invisible to the
declarative runtime.  A :class:`FaultPlan` lifts them to spec level — a
plain-data description of *which robot* (by placement index) suffers
*which fault* — so a :class:`repro.runtime.RunSpec` can carry a fault
campaign through the cache/parallel machinery, and scenarios can compose
crashes with delayed starts on the same robot.

Robots are addressed by **placement index**: position ``i`` in the spec's
``starts``/``labels`` lists (0-based), *not* by label.  Labels are drawn
by the label scheme at materialization time, so a plan written against
labels would silently re-target robots whenever the label seed changed;
the placement index is stable across label schemes by construction.

Wrapping order is crash-outermost: ``crash_at(delayed_start(f, d), r)``.
Both wrappers anchor on the absolute ``obs.round``, so a crash scheduled
*inside* the delay window fires at the robot's first activation after the
delay — the fail-stop nobody can observe earlier, matching
:func:`~repro.ext.crash_faults.crash_at`'s sleeping-robot convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.ext.crash_faults import crash_at
from repro.ext.startup_delay import delayed_start
from repro.sim.robot import ProgramFactory

__all__ = ["FaultPlan"]


def _normalize(table: Mapping[Any, int], what: str) -> Tuple[Tuple[int, int], ...]:
    """``{index: round}`` (JSON string keys welcome) -> sorted int pairs."""
    pairs = []
    for raw_index, value in table.items():
        index = int(raw_index)
        value = int(value)
        if index < 0:
            raise ValueError(f"{what}: robot index {index} must be >= 0")
        if value < 0:
            raise ValueError(f"{what}: round/delay {value} must be >= 0")
        pairs.append((index, value))
    pairs.sort()
    if len({i for i, _ in pairs}) != len(pairs):
        raise ValueError(f"{what}: duplicate robot index")
    return tuple(pairs)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault campaign: crash rounds and start delays by index.

    ``crashes`` / ``delays`` are sorted ``(robot_index, value)`` tuples so
    the plan is hashable and order-canonical; build from dicts with
    :meth:`from_dict`.
    """

    crashes: Tuple[Tuple[int, int], ...] = ()
    delays: Tuple[Tuple[int, int], ...] = ()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Build from the JSON form ``{"crash": {i: round}, "delay": {i: d}}``.

        This is the shape :attr:`repro.runtime.RunSpec.faults` carries
        (keys may be strings — JSON round-trips force that).
        """
        known = set(data) - {"crash", "delay"}
        if known:
            raise ValueError(f"unknown fault kinds {sorted(known)}; known: crash, delay")
        return cls(
            crashes=_normalize(data.get("crash", {}), "crash"),
            delays=_normalize(data.get("delay", {}), "delay"),
        )

    def to_dict(self) -> Dict[str, Dict[str, int]]:
        """The canonical JSON form (string keys, sorted), inverse of
        :meth:`from_dict` — what a spec should carry in ``faults``."""
        out: Dict[str, Dict[str, int]] = {}
        if self.crashes:
            out["crash"] = {str(i): r for i, r in self.crashes}
        if self.delays:
            out["delay"] = {str(i): d for i, d in self.delays}
        return out

    @property
    def empty(self) -> bool:
        return not self.crashes and not self.delays

    def validate_for(self, k: int) -> None:
        """Reject indices outside a ``k``-robot placement."""
        for what, pairs in (("crash", self.crashes), ("delay", self.delays)):
            for index, _ in pairs:
                if index >= k:
                    raise ValueError(
                        f"{what}: robot index {index} out of range for k={k}"
                    )

    def wrap(self, index: int, factory: ProgramFactory) -> ProgramFactory:
        """The factory robot ``index`` should run: the original, possibly
        wrapped in :func:`delayed_start` and/or :func:`crash_at`."""
        wrapped = factory
        for i, delay in self.delays:
            if i == index and delay > 0:
                wrapped = delayed_start(wrapped, delay)
        for i, round_ in self.crashes:
            if i == index:
                wrapped = crash_at(wrapped, round_)
        return wrapped

    def describe(self) -> str:
        parts = []
        if self.crashes:
            parts.append(
                "crash " + ", ".join(f"#{i}@r{r}" for i, r in self.crashes)
            )
        if self.delays:
            parts.append(
                "delay " + ", ".join(f"#{i}+{d}" for i, d in self.delays)
            )
        return "; ".join(parts) if parts else "none"
