"""Crash-fault injection (the paper's §1.4 "alternative settings").

:func:`crash_at` wraps a program factory so the robot dies (terminates in
place, permanently inert but physically present) at a chosen round.  This
is the standard crash-fault model for mobile robots: the carcass occupies
its node and remains visible to co-located robots — which is precisely what
poisons detection, since a dead waiter looks identical to a live one whose
schedule says "wait".

Gathering *with detection* is unachievable in general under crash faults
with this algorithm family (the paper cites fault-tolerant gathering as a
separate line of work); the wrapper exists so experiments and tests can
quantify the failure modes:

* a crashed **waiter** is never collected → the survivors still terminate
  on schedule, mis-detecting (the run's ``detected`` is False);
* a crashed **finder** strands its helpers mid-phase;
* crashes *after* gathering are harmless.
"""

from __future__ import annotations

from repro.sim.actions import Action
from repro.sim.robot import ProgramFactory, RobotContext

__all__ = ["crash_at"]


def crash_at(factory: ProgramFactory, round_: int) -> ProgramFactory:
    """Wrap ``factory`` so the robot crashes at round ``round_``.

    The inner program runs normally until the first time the robot is
    active at or after ``round_``; it then terminates in place, regardless
    of what the inner program wanted to do.  (A sleeping robot crashes at
    its next activation — modelling a fail-stop that nobody can observe
    until they would have interacted with it anyway.)
    """
    if round_ < 0:
        raise ValueError("crash round must be >= 0")

    def wrapped(ctx: RobotContext):
        inner = factory(ctx)

        def program():
            obs = yield
            first = next(inner)
            if first is not None:  # pragma: no cover - inner must be a program
                raise RuntimeError("inner program must start with a bare yield")
            while True:
                if obs.round >= round_:
                    ctx.stats["crashed_at"] = obs.round
                    yield Action.terminate()
                    return
                action = inner.send(obs)
                obs = yield action

        return program()

    return wrapped
