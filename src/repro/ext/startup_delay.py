"""Startup-delay wrapper (the paper's first future-work direction).

The paper: *"we assumed that all robots simultaneously woke up.  An
interesting future direction would be to see if we can leverage this
approach ... even if robots wake up at arbitrary times."*

:func:`delayed_start` wraps any program factory so the robot sleeps through
its first ``delay`` rounds before running the original program.  The robot
is physically present while dormant (it occupies its node and its initial
card is visible — matching the standard "dormant until woken, but
collectable" convention; a dormant robot does not react to meetings).

What to expect (and what the tests pin down):

* delay-0 wrapping is the identity;
* the oblivious schedules of ``Undispersed-Gathering`` / ``Faster-
  Gathering`` **break** under asymmetric delays — phase boundaries
  desynchronize, so robots read each other's cards mid-phase and the
  Lemma-11 aloneness check loses its meaning.  This is a *demonstration*
  that the simultaneous-start assumption is load-bearing, not a bug;
* the UXS algorithm tolerates *delay-faulted groups* in restricted cases
  (e.g. a robot delayed past another's full exploration is still found as
  a waiter would be), but its termination rule is also calibrated to a
  common round 0 — the tests include a breaking configuration.
"""

from __future__ import annotations

from repro.sim.actions import Action
from repro.sim.robot import ProgramFactory, RobotContext

__all__ = ["delayed_start"]


def delayed_start(factory: ProgramFactory, delay: int) -> ProgramFactory:
    """Wrap ``factory`` so the robot's program starts at round ``delay``.

    The wrapped robot sleeps (without reacting to meetings) through rounds
    ``0 .. delay-1`` and then runs the inner program, which sees its first
    observation at round ``delay``.  Inner programs that assume their first
    observation is round 0 must use relative arithmetic — all programs in
    :mod:`repro.core` do (they anchor on ``obs.round``), so the wrapper
    composes mechanically; the *semantic* breakage under delay is the
    interesting part.
    """
    if delay < 0:
        raise ValueError("delay must be >= 0")

    def wrapped(ctx: RobotContext):
        inner = factory(ctx)

        def program():
            obs = yield
            if delay > 0:
                while obs.round < delay:
                    obs = yield Action.sleep(delay, wake_on_meet=False)
            # hand over: prime the inner generator, then forward its
            # first action with our current observation
            first = next(inner)
            if first is not None:  # pragma: no cover - inner must be a program
                raise RuntimeError("inner program must start with a bare yield")
            action = inner.send(obs)
            while True:
                obs = yield action
                action = inner.send(obs)

        return program()

    return wrapped
