"""Extensions: the paper's alternative settings and future-work probes.

The core algorithms assume the model of §1.1 exactly: simultaneous start,
fault-free robots.  The paper's conclusion names the relaxations it leaves
open; this package provides the instrumentation to *experiment* with them
(and tests demonstrating precisely where the assumptions are load-bearing):

* :mod:`~repro.ext.startup_delay` — wake robots at different rounds.  The
  oblivious schedules of ``Faster-Gathering`` desynchronize under delays
  (phase boundaries no longer align), which is why the paper explicitly
  assumes simultaneous start; the tests show a delayed run breaking and the
  delay-tolerant UXS-style baseline surviving.
* :mod:`~repro.ext.crash_faults` — kill robots at chosen rounds.  Gathering
  *with detection* is impossible in general under crashes (a waiter that
  dies can never be collected, and nobody can know); the wrapper lets
  experiments quantify how the algorithms degrade.
* :mod:`~repro.ext.faults` — :class:`FaultPlan`, the declarative form of
  both wrappers: plain data a :class:`repro.runtime.RunSpec` can carry, so
  fault campaigns compose with parallel execution and result caching (and
  with each other — a robot can be both delayed and doomed).
"""

from repro.ext.startup_delay import delayed_start
from repro.ext.crash_faults import crash_at
from repro.ext.faults import FaultPlan

__all__ = ["delayed_start", "crash_at", "FaultPlan"]
