#!/usr/bin/env python
"""Watch a gathering happen: ASCII replay of ``Undispersed-Gathering``.

Records every position change during a run on a path graph and renders the
timeline as a node strip — you can literally see the finder's token
exploration (Phase 1) sweeping back and forth, the long synchronized wait,
and the Phase-2 collection tour dragging everyone to one cell.

Run:  python examples/watch_gathering.py
"""

from repro import RobotSpec, World, generators, undispersed_gathering_program
from repro.sim.replay import ReplayRecorder, render_strip


def main() -> None:
    graph = generators.path(10)
    # a finder/helper pair at node 2, waiters at 5 and 8
    robots = [
        RobotSpec(label=3, start=2, factory=undispersed_gathering_program()),
        RobotSpec(label=9, start=2, factory=undispersed_gathering_program()),
        RobotSpec(label=12, start=5, factory=undispersed_gathering_program()),
        RobotSpec(label=20, start=8, factory=undispersed_gathering_program()),
    ]
    replay = ReplayRecorder()
    result = World(graph, robots).run(replay=replay)
    assert result.gathered and result.detected

    print("Undispersed-Gathering on a 10-node path")
    print("(cells show how many robots stand on each node; '.' = empty)\n")
    print(render_strip(replay, graph.n, max_rows=45))
    print()
    print(f"gathered at node {result.final_node} after {result.rounds:,} rounds "
          f"({result.total_moves} moves; idle waits are skipped in the view)")


if __name__ == "__main__":
    main()
