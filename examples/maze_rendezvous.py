#!/usr/bin/env python
"""Maze rendezvous: two search parties, and what knowledge buys (Remarks 13-14).

Scenario.  Two search parties explore a cave system (a sparse "maze" graph:
a grid with chords removed — here a caterpillar-with-loops built from a
cycle with chords).  They finish in different chambers and must rendezvous.
Neither knows where the other is; both know only the number of chambers.

The script runs the rendezvous four ways on the same maze:

1. blind ``Faster-Gathering`` (the paper's base model);
2. with the Remark-13 hint (the parties radioed their rough distance);
3. with the Remark-14 hint (the cave survey bounded the junction degree);
4. with both hints.

Run:  python examples/maze_rendezvous.py
"""

from repro import RobotSpec, World, faster_gathering_program, generators
from repro.analysis import render_table
from repro.graphs.traversal import distance


def rendezvous(graph, starts, labels, knowledge):
    robots = [
        RobotSpec(label=l, start=s, factory=faster_gathering_program(),
                  knowledge=dict(knowledge))
        for l, s in zip(labels, starts)
    ]
    result = World(graph, robots).run()
    assert result.gathered and result.detected
    return result


def main() -> None:
    maze = generators.cycle_with_chords(16, chords=3)
    a, b = 0, 3
    d = distance(maze, a, b)
    labels = [5, 9]
    max_deg = maze.max_degree

    print(f"maze: cycle-with-chords, n={maze.n}, max degree {max_deg}")
    print(f"search parties at chambers {a} and {b}, hop distance {d}\n")

    variants = [
        ("blind (base model)", {}),
        ("knows distance (Remark 13)", {"hop_distance": d}),
        ("knows max degree (Remark 14)", {"max_degree": max_deg}),
        ("knows both", {"hop_distance": d, "max_degree": max_deg}),
    ]
    rows = []
    for name, knowledge in variants:
        result = rendezvous(maze, [a, b], labels, knowledge)
        rows.append(
            {
                "variant": name,
                "rounds": result.rounds,
                "moves": result.total_moves,
                "meeting chamber": result.final_node,
            }
        )

    print(render_table(rows, title="Rendezvous cost by granted knowledge"))
    print()
    base = rows[0]["rounds"]
    best = rows[-1]["rounds"]
    print(f"Knowledge is rounds: both hints together cut the schedule from")
    print(f"{base:,} to {best:,} rounds ({base / best:.1f}x) — exactly the")
    print("Remark 13/14 trade-offs the paper sketches.")


if __name__ == "__main__":
    main()
