#!/usr/bin/env python
"""A tour of the scenario registry — what breaks outside the paper's model.

The paper proves gathering-with-detection under three load-bearing
assumptions: simultaneous start, synchronous activation, fault-free
robots.  The scenario subsystem (``repro.scenarios``) packages the
violations of each as named, declarative campaigns.  This script:

1. lists the curated registry;
2. runs the ``single-crash-waiter`` campaign — one dead waiter makes the
   survivors terminate *believing* gathering succeeded (mis-detection),
   while the same crash scheduled after the schedule ends is harmless;
3. runs ``delayed-start`` — a uniform delay shifts the whole schedule
   harmlessly; delaying one waiter past the schedule strands it;
4. shows ``rounds_past_schedule``: every campaign row is measured against
   its *clean twin* (same spec, paper model).

Run:  python examples/scenario_tour.py
"""

from repro.analysis import render_table
from repro.analysis.sweeps import scenario_sweep
from repro.scenarios import all_scenarios, get_scenario


def main() -> None:
    print("=" * 72)
    print("The curated scenario registry")
    print("=" * 72)
    rows = [
        {"scenario": sc.name, "runs": len(sc.specs), "probes": sc.paper or "-"}
        for sc in all_scenarios()
    ]
    print(render_table(rows, title=f"{len(rows)} scenarios (docs/SCENARIOS.md)"))

    for name in ("single-crash-waiter", "delayed-start"):
        scenario = get_scenario(name)
        print()
        print("=" * 72)
        print(f"{name}: {scenario.title}")
        print("=" * 72)
        out = scenario_sweep(name)
        columns = [
            "faults", "rounds", "gathered", "detected",
            "mis_detected", "stranded", "crashed", "rounds_past_schedule",
        ]
        print(render_table(
            [{c: r[c] for c in columns} for r in out["rows"]],
            title=f"expectation: {scenario.expectation}",
        ))
        summary = out["summary"]
        print(f"\n  mis-detection rate: {summary['mis_detection_rate']:.2f}   "
              f"stranded: {summary['stranded_total']}   "
              f"crashed: {summary['crashed_total']}")

    print()
    print("Every campaign compiles to plain RunSpec batches, so "
          "`--workers`/`--cache-dir`\nwork unchanged:  "
          "python -m repro scenarios run crash-storm --workers 2")


if __name__ == "__main__":
    main()
