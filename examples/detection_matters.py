#!/usr/bin/env python
"""Why *detection* is the hard part — and what it costs.

Gathering algorithms without detection (the prior state of the art,
Ta-Shma–Zwick style) leave robots in a strange limbo: the configuration may
have been gathered for ages, but no robot can ever stop — stopping early is
unsound, because "everyone seems to be here" is not provable without either
detection machinery or global knowledge.

This script demonstrates the hazard concretely:

1. a **naive early-stopper** — a robot that terminates the first time it
   sees company — mis-terminates on a 3-robot instance (two robots meet and
   stop while the third is still out there): gathering *fails*;
2. the **TZ-style baseline** gathers but never knows it (we have to peek
   from outside the system to see it happened);
3. the paper's **UXS gathering with detection** pays a quantified tail
   (the final silent ``2T`` wait) and terminates correctly, every robot
   knowing the job is done.

Run:  python examples/detection_matters.py
"""

from repro import Action, RobotSpec, World, generators, uxs_gathering_program
from repro.analysis import render_table
from repro.baselines import tz_rendezvous_program


def naive_early_stopper():
    """Terminate the first time another robot is co-located.  UNSOUND."""
    from repro.uxs.generators import splitmix_offsets

    def factory(ctx):
        def program(ctx=ctx):
            obs = yield
            card = {"following": None}
            # deterministic label-seeded sweep (different walks do meet)
            steps = iter(splitmix_offsets(ctx.n, 1_000_000, stream=ctx.label))
            while obs.alone(ctx.label):
                obs = yield Action.move(next(steps) % max(obs.degree, 1), card=card)
                card = None
            yield Action.terminate()

        return program(ctx)

    return factory


def main() -> None:
    graph = generators.ring(9)
    starts = [0, 1, 5]
    labels = [3, 9, 14]

    rows = []

    # 1. the unsound early stopper
    robots = [RobotSpec(l, s, naive_early_stopper()) for l, s in zip(labels, starts)]
    res = World(graph, robots).run(max_rounds=100_000)
    rows.append(
        {
            "strategy": "naive early-stop",
            "gathered": res.gathered,
            "all terminations sound": res.metrics.terminations_all_gathered,
            "rounds": res.rounds,
            "verdict": "UNSOUND" if not res.detected else "ok",
        }
    )

    # 2. TZ-style: gathers, cannot know it
    robots = [RobotSpec(l, s, tz_rendezvous_program()) for l, s in zip(labels, starts)]
    res = World(graph, robots).run(stop_on_gather=True)
    rows.append(
        {
            "strategy": "TZ rendezvous (no detection)",
            "gathered": True,
            "all terminations sound": None,
            "rounds": res.metrics.first_gather_round,
            "verdict": "gathered, but no robot knows",
        }
    )

    # 3. the paper: gathering WITH detection
    robots = [RobotSpec(l, s, uxs_gathering_program()) for l, s in zip(labels, starts)]
    res = World(graph, robots).run()
    tail = res.rounds - (res.metrics.first_gather_round or 0)
    rows.append(
        {
            "strategy": "UXS gathering with detection",
            "gathered": res.gathered,
            "all terminations sound": res.detected,
            "rounds": res.rounds,
            "verdict": f"sound; detection tail = {tail:,} rounds",
        }
    )

    print(render_table(rows, title="Detection: the difference between stopping and knowing"))
    print()
    print("The naive stopper shows why detection is not free: stopping on")
    print("first contact strands the rest of the fleet.  The paper's")
    print("algorithm buys certainty with the silent-wait tail quantified")
    print("in the last row (and benchmark E10).")


if __name__ == "__main__":
    main()
