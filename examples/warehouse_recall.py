#!/usr/bin/env python
"""Warehouse recall: many robots, fast gathering — the paper's motivation.

Scenario.  A fleet of floor robots has just finished a coverage task in a
warehouse (aisles modeled as a grid graph) and sits scattered across the
floor, one robot per cell.  They must now regroup at a single cell for
maintenance — and every robot must *know* when regrouping is complete so it
can power down (gathering **with detection**).

This is exactly the "power of many robots" setting: with ``k >= ⌊n/2⌋+1``
robots, Lemma 15 guarantees two of them ended up within 2 hops, so
``Faster-Gathering`` completes in its O(n^3) regime — no matter how
adversarially the coverage task scattered them.

The script sweeps fleet sizes over the three regimes of Theorem 16 and
prints the measured regrouping times.

Run:  python examples/warehouse_recall.py
"""

from repro import RobotSpec, World, faster_gathering_program, generators
from repro.analysis import adversarial_scatter, assign_labels, min_pairwise_distance, render_table
from repro.analysis.experiments import regime_for


def recall(graph, k: int, seed: int):
    starts = adversarial_scatter(graph, k, seed=seed)
    labels = assign_labels(k, graph.n, seed=seed)
    robots = [
        RobotSpec(label=l, start=s, factory=faster_gathering_program())
        for l, s in zip(labels, starts)
    ]
    result = World(graph, robots).run()
    assert result.gathered and result.detected
    return starts, result


def main() -> None:
    rows = []
    graph = generators.grid(4, 5)  # a 20-cell warehouse floor
    n = graph.n
    print(f"warehouse floor: {4}x{5} grid, n={n} cells\n")

    for k in (n // 2 + 1, n // 3 + 1, 3):
        starts, result = recall(graph, k, seed=7)
        regime = regime_for(k, n)
        step = next(iter(result.stats.values())).get("gathered_at_step")
        rows.append(
            {
                "fleet size k": k,
                "regime": {"n3": "O(n^3)", "n4logn": "O(n^4 log n)", "n5": "~O(n^5)"}[regime],
                "scatter min-dist": min_pairwise_distance(graph, starts),
                "recall rounds": result.rounds,
                "gathered at step": step if step is not None else "UXS fallback",
                "depot cell": result.final_node,
            }
        )

    print(render_table(rows, title="Fleet recall times by fleet size (Theorem 16 in action)"))
    print()
    print("Reading: the larger the fleet, the tighter the adversary is")
    print("squeezed by Lemma 15, and the earlier Faster-Gathering's staged")
    print("schedule can stop — many robots make gathering *faster*.")


if __name__ == "__main__":
    main()
