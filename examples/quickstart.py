#!/usr/bin/env python
"""Quickstart: gather seven robots on a 12-node ring, with detection.

Demonstrates the 60-second path through the public API:

1. build an anonymous port-labeled graph,
2. drop labeled robots on it,
3. run ``Faster-Gathering`` and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import (
    RobotSpec,
    TraceRecorder,
    World,
    bounds,
    faster_gathering_program,
    generators,
)


def main() -> None:
    n = 12
    graph = generators.ring(n)

    # Seven robots (k >= n/2 + 1: Theorem 16's fastest regime), dispersed by
    # an adversary but — by Lemma 15 — necessarily with some pair within 2
    # hops of each other.
    starts = [0, 2, 4, 5, 7, 9, 11]
    labels = [3, 5, 8, 12, 21, 34, 55]
    robots = [
        RobotSpec(label=l, start=s, factory=faster_gathering_program())
        for l, s in zip(labels, starts)
    ]

    trace = TraceRecorder(kinds=["terminate"])
    result = World(graph, robots).run(trace=trace)

    print(f"graph: ring with n={n} nodes, k={len(robots)} robots")
    print(f"gathered:  {result.gathered} (all robots on node {result.final_node})")
    print(f"detected:  {result.detected} (every robot terminated knowing it)")
    print(f"rounds:    {result.rounds:,}")
    print(f"moves:     {result.total_moves:,} edge traversals in total")
    step = next(iter(result.stats.values())).get("gathered_at_step")
    print(f"finished in step {step} of Faster-Gathering "
          f"(O(n^3) boundary = {bounds.faster_gathering_boundaries(n)[2]:,} rounds)")
    print()
    print("termination events:")
    print(trace.summary())


if __name__ == "__main__":
    main()
